(* Tests for the SoC substrate, culminating in the §5.2.2 experiment:
   wait-state misconfiguration shows as a k mismatch, refresh collisions
   as a TP mismatch, and the delayed-once property localizes the exact
   delayed cycle. *)

open Tp_soc
open Timeprint

let entry = Alcotest.testable Log_entry.pp Log_entry.equal

(* ------------------------------------------------------------------ *)
(* CPU                                                                 *)

let test_cpu_memcpy () =
  let words = 8 and src = 0x8000 and dst = 0x9000 in
  let prog = Isa.memcpy ~words ~src ~dst in
  let r = Cpu.run prog in
  Alcotest.(check bool) "halted" true (r.Cpu.halted_at <> None);
  (* source reads default to 0; seed by checking store addresses instead *)
  for i = 0 to words - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "dst[%d] written" i)
      true
      (Hashtbl.mem r.Cpu.memory (dst + i))
  done

let test_cpu_checksum_accesses () =
  let prog = Isa.checksum ~words:5 ~src:0x8000 in
  let r = Cpu.run prog in
  let data_reads =
    List.filter (fun { Cpu.addr; _ } -> addr >= 0x8000 && addr < 0x8005) r.Cpu.accesses
  in
  Alcotest.(check int) "five data loads" 5 (List.length data_reads)

let test_cpu_accesses_monotonic () =
  let prog = Isa.stride_walker ~steps:20 ~base:0x8000 ~stride:4 in
  let r = Cpu.run prog in
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Cpu.cycle < b.Cpu.cycle && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing cycles" true (mono r.Cpu.accesses)

let test_cpu_wait_states_slow_down () =
  let prog = Isa.checksum ~words:10 ~src:0x8000 in
  let fast = Cpu.run ~wait_states:0 prog in
  let slow = Cpu.run ~wait_states:2 prog in
  let last r = List.fold_left (fun acc a -> max acc a.Cpu.cycle) 0 r.Cpu.accesses in
  Alcotest.(check bool) "more wait states finish later" true (last slow > last fast)

let test_cpu_invalid_program () =
  Alcotest.(check bool) "bad register rejected" true
    (match Cpu.run [| Isa.Li { rd = 9; imm = 0 } |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* AHB                                                                 *)

let test_ahb_waveform_holds () =
  let accesses = [ { Cpu.cycle = 2; addr = 5 }; { Cpu.cycle = 6; addr = 9 } ] in
  let wave = Ahb.waveform accesses ~cycles:10 in
  Alcotest.(check (list int)) "hold semantics"
    [ 0; 0; 5; 5; 5; 5; 9; 9; 9; 9 ]
    (Array.to_list wave)

let test_ahb_change_bits () =
  let accesses =
    [
      { Cpu.cycle = 2; addr = 5 };
      { Cpu.cycle = 4; addr = 5 };
      (* same address: no change *)
      { Cpu.cycle = 6; addr = 9 };
    ]
  in
  let bits = Ahb.change_bits accesses ~cycles:10 in
  Alcotest.(check (list bool)) "changes at 2 and 6"
    [ false; false; true; false; false; false; true; false; false; false ]
    (Array.to_list bits)

(* ------------------------------------------------------------------ *)
(* SRAM refresh + temperature                                          *)

let test_refresh_fires_periodically () =
  let rc = { Sram.default_refresh with base_interval = 50; min_interval = 10; duration = 2 } in
  let sram = Sram.create ~refresh:rc ~wait_states:1 () in
  for _ = 1 to 500 do
    Sram.step sram ~celsius:rc.Sram.reference_celsius
  done;
  Alcotest.(check bool) "about 10 refreshes" true
    (let n = Sram.refresh_count sram in
     n >= 9 && n <= 11)

let test_refresh_interval_shrinks_with_heat () =
  let rc =
    { Sram.default_refresh with base_interval = 100; min_interval = 10; cycles_per_degree = 2.0 }
  in
  let count_at celsius =
    let sram = Sram.create ~refresh:rc ~wait_states:1 () in
    for _ = 1 to 2_000 do
      Sram.step sram ~celsius
    done;
    Sram.refresh_count sram
  in
  Alcotest.(check bool) "hotter refreshes more" true (count_at 60.0 > count_at 25.0)

let test_no_refresh_config () =
  let sram = Sram.create ~wait_states:1 () in
  for _ = 1 to 10_000 do
    Sram.step sram ~celsius:25.0
  done;
  Alcotest.(check int) "never refreshes" 0 (Sram.refresh_count sram);
  Alcotest.(check bool) "never busy" false (Sram.refreshing sram)

let test_temperature_dynamics () =
  let t = Temperature.create (Temperature.default ~ambient:25.0) in
  for _ = 1 to 10_000 do
    Temperature.step t ~active:true
  done;
  let hot = Temperature.celsius t in
  Alcotest.(check bool) "heats up" true (hot > 26.0);
  for _ = 1 to 200_000 do
    Temperature.step t ~active:false
  done;
  Alcotest.(check bool) "cools toward ambient" true
    (Temperature.celsius t < hot && Temperature.celsius t < 26.0)

(* ------------------------------------------------------------------ *)
(* Agg-log hardware vs functional reference                            *)

let test_agglog_equals_logger () =
  let enc = Encoding.random_constrained ~m:32 ~b:12 () in
  let agg = Agglog.create enc in
  let logger = Logger.create enc in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 32 * 5 do
    let change = Random.State.bool rng in
    Agglog.clock agg ~change;
    ignore (Logger.step logger ~change)
  done;
  Alcotest.(check (list entry)) "hardware = reference" (Logger.completed logger)
    (Agglog.drain agg)

let test_agglog_overflow () =
  let enc = Encoding.random_constrained ~m:8 ~b:6 () in
  let agg = Agglog.create ~fifo_depth:2 enc in
  for _ = 1 to 8 * 4 do
    Agglog.clock agg ~change:false
  done;
  Alcotest.(check bool) "overflowed" true (Agglog.overflowed agg);
  Alcotest.(check int) "kept depth" 2 (Agglog.fifo_level agg)

(* ------------------------------------------------------------------ *)
(* UART                                                                *)

let test_uart_roundtrip_bytes () =
  let bytes = [ 0x00; 0xff; 0x55; 0xaa; 0x13 ] in
  List.iter
    (fun divisor ->
      let line = Uart.transmit_all ~divisor bytes in
      Alcotest.(check (list int))
        (Printf.sprintf "divisor %d" divisor)
        bytes
        (Uart.decode_line ~divisor line))
    [ 1; 3; 4; 8 ]

let test_uart_codec_roundtrip () =
  let m = 1000 and b = 24 in
  let entry_in =
    Log_entry.make ~tp:(Tp_bitvec.Bitvec.of_int ~width:b 0x9a55e1) ~k:137
  in
  let bytes = Uart.Codec.entry_bytes ~m entry_in in
  Alcotest.(check int) "paper size: ceil(34/8) bytes" 5 (List.length bytes);
  match Uart.Codec.entry_of_bytes ~m ~b bytes with
  | Error e -> Alcotest.fail e
  | Ok e -> Alcotest.check entry "roundtrip" entry_in e

(* ------------------------------------------------------------------ *)
(* Full system: the §5.2.2 experiment                                  *)

let experiment_encoding = Encoding.random_constrained ~m:256 ~b:20 ~seed:5 ()
let experiment_program = Isa.stride_walker ~steps:600 ~base:0x8000 ~stride:3

let run_hw ?(ambient = 55.0) () =
  Soc_system.run
    (Soc_system.hardware_config ~ambient experiment_encoding)
    experiment_program

let run_sim ?(wait_states = 1) () =
  Soc_system.run
    (Soc_system.simulation_config ~wait_states experiment_encoding)
    experiment_program

let test_soc_determinism () =
  let a = run_sim () and b = run_sim () in
  Alcotest.(check (list entry)) "identical runs" a.Soc_system.entries
    b.Soc_system.entries

let test_soc_uart_delivery () =
  let r = run_sim () in
  Alcotest.(check (list entry)) "uart delivers all entries" r.Soc_system.entries
    r.Soc_system.uart_entries

let test_soc_entries_match_signals () =
  let r = run_sim () in
  List.iter2
    (fun s e ->
      Alcotest.check entry "entry = abstract(signal)"
        (Logger.abstract experiment_encoding s)
        e)
    r.Soc_system.signals r.Soc_system.entries

let test_wait_state_bug_shows_as_k_mismatch () =
  (* the Gaisler-library bug: simulation used wrong SRAM wait states *)
  let hw = run_hw () in
  let sim_wrong = run_sim ~wait_states:0 () in
  match Soc_system.first_mismatch hw sim_wrong with
  | `K _ -> ()
  | `Tp i -> Alcotest.failf "expected k mismatch, got TP mismatch at %d" i
  | `None -> Alcotest.fail "expected a mismatch"

let test_refresh_shows_as_tp_mismatch () =
  (* after fixing wait states, k agrees but timeprints diverge where a
     refresh collision delayed an address change *)
  let hw = run_hw () in
  let sim = run_sim ~wait_states:1 () in
  Alcotest.(check bool) "refresh happened" true (hw.Soc_system.refresh_count > 0);
  Alcotest.(check bool) "collisions happened" true
    (hw.Soc_system.delayed_changes <> []);
  match Soc_system.first_mismatch hw sim with
  | `Tp _ -> ()
  | `K i -> Alcotest.failf "unexpected k mismatch at trace-cycle %d" i
  | `None -> Alcotest.fail "expected a TP mismatch"

let find_single_delay_cycle hw =
  (* a trace-cycle with exactly one refresh-delayed change *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (tc, _) ->
      Hashtbl.replace counts tc (1 + Option.value ~default:0 (Hashtbl.find_opt counts tc)))
    hw.Soc_system.delayed_changes;
  let single =
    List.filter_map
      (fun (tc, c) -> if Hashtbl.find counts tc = 1 then Some (tc, c) else None)
      hw.Soc_system.delayed_changes
  in
  match single with [] -> None | x :: _ -> Some x

let test_delayed_once_localizes () =
  let hw = run_hw () in
  let sim = run_sim ~wait_states:1 () in
  match find_single_delay_cycle hw with
  | None -> Alcotest.fail "no single-delay trace-cycle in this run; retune params"
  | Some (tc, delayed_cycle) ->
      let hw_entry = List.nth hw.Soc_system.entries tc in
      let sim_signal = List.nth sim.Soc_system.signals tc in
      let hw_signal = List.nth hw.Soc_system.signals tc in
      (* sanity: ground truth is sim's signal with one change delayed *)
      Alcotest.(check bool) "hw signal = delayed sim signal" true
        (Signal.equal hw_signal
           (Signal.delay_change sim_signal ~at:delayed_cycle));
      (* the reconstruction with the delayed-once hypothesis finds it *)
      let pb =
        Reconstruct.problem
          ~assume:[ Property.delayed_once sim_signal ]
          experiment_encoding hw_entry
      in
      let { Reconstruct.signals; complete } = Reconstruct.enumerate pb in
      Alcotest.(check bool) "complete" true complete;
      Alcotest.(check bool) "ground truth found" true
        (List.exists (Signal.equal hw_signal) signals);
      (* and every solution pinpoints the same delayed cycle here *)
      List.iter
        (fun s ->
          Alcotest.(check bool) "delay localized" true
            (Signal.equal s (Signal.delay_change sim_signal ~at:delayed_cycle)
            || Signal.num_changes s = Signal.num_changes hw_signal))
        signals

(* ------------------------------------------------------------------ *)
(* DMA second master                                                   *)

let test_dma_schedule_shape () =
  let cfg =
    { Tp_soc.Dma.burst = 3; interval = 10; start = 2; base = 100; stride = 2 }
  in
  let accs = Tp_soc.Dma.schedule cfg ~until:25 in
  Alcotest.(check (list (pair int int)))
    "bursts at 2.. and 12.. and 22.."
    [ (2, 100); (3, 102); (4, 104); (12, 106); (13, 108); (14, 110); (22, 112); (23, 114); (24, 116) ]
    (List.map (fun { Cpu.cycle; addr } -> (cycle, addr)) accs)

let test_dma_merge_priority () =
  let dma = [ { Cpu.cycle = 5; addr = 1 }; { Cpu.cycle = 6; addr = 2 } ] in
  let cpu = [ { Cpu.cycle = 5; addr = 10 }; { Cpu.cycle = 9; addr = 11 } ] in
  let merged = Tp_soc.Dma.merge ~dma ~cpu in
  Alcotest.(check (list (pair int int)))
    "cpu slips past the burst"
    [ (5, 1); (6, 2); (7, 10); (9, 11) ]
    (List.map (fun { Cpu.cycle; addr } -> (cycle, addr)) merged)

let test_dma_traffic_traced () =
  (* with a DMA master, the traced stream gains its bursts: k grows,
     determinism and uart delivery still hold *)
  let cfg = Soc_system.hardware_config ~ambient:55.0 ~dma:Tp_soc.Dma.default experiment_encoding in
  let with_dma = Soc_system.run cfg experiment_program in
  let without = run_hw () in
  Alcotest.(check (list entry)) "uart delivery with dma" with_dma.Soc_system.entries
    with_dma.Soc_system.uart_entries;
  let total_k r =
    List.fold_left (fun acc e -> acc + Log_entry.k e) 0 r.Soc_system.entries
  in
  Alcotest.(check bool) "dma adds observed changes" true
    (total_k with_dma > total_k without);
  (* the detection methodology is unaffected: hw-vs-sim still diverges
     by TP only, with k equal, when both runs carry the same dma *)
  let sim =
    Soc_system.run
      (Soc_system.simulation_config ~wait_states:1 ~dma:Tp_soc.Dma.default
         experiment_encoding)
      experiment_program
  in
  match Soc_system.first_mismatch with_dma sim with
  | `Tp _ -> ()
  | `K i -> Alcotest.failf "unexpected k mismatch at %d" i
  | `None -> Alcotest.fail "expected a mismatch"

let test_higher_temperature_earlier_mismatch () =
  let sim = run_sim ~wait_states:1 () in
  let mismatch_at ambient =
    match Soc_system.first_mismatch (run_hw ~ambient ()) sim with
    | `Tp i | `K i -> i
    | `None -> max_int
  in
  let cold = mismatch_at 30.0 in
  let hot = mismatch_at 75.0 in
  Alcotest.(check bool)
    (Printf.sprintf "hot (%d) no later than cold (%d)" hot cold)
    true (hot <= cold)

let () =
  Alcotest.run "soc"
    [
      ( "cpu",
        [
          Alcotest.test_case "memcpy writes" `Quick test_cpu_memcpy;
          Alcotest.test_case "checksum accesses" `Quick test_cpu_checksum_accesses;
          Alcotest.test_case "monotonic accesses" `Quick test_cpu_accesses_monotonic;
          Alcotest.test_case "wait states slow down" `Quick test_cpu_wait_states_slow_down;
          Alcotest.test_case "invalid program" `Quick test_cpu_invalid_program;
        ] );
      ( "ahb",
        [
          Alcotest.test_case "waveform hold" `Quick test_ahb_waveform_holds;
          Alcotest.test_case "change bits" `Quick test_ahb_change_bits;
        ] );
      ( "sram-thermal",
        [
          Alcotest.test_case "refresh fires" `Quick test_refresh_fires_periodically;
          Alcotest.test_case "interval shrinks with heat" `Quick test_refresh_interval_shrinks_with_heat;
          Alcotest.test_case "no refresh config" `Quick test_no_refresh_config;
          Alcotest.test_case "temperature dynamics" `Quick test_temperature_dynamics;
        ] );
      ( "agglog",
        [
          Alcotest.test_case "hardware = reference logger" `Quick test_agglog_equals_logger;
          Alcotest.test_case "fifo overflow" `Quick test_agglog_overflow;
        ] );
      ( "uart",
        [
          Alcotest.test_case "byte roundtrip" `Quick test_uart_roundtrip_bytes;
          Alcotest.test_case "entry codec (34-bit wire format)" `Quick test_uart_codec_roundtrip;
        ] );
      ( "experiment-5.2.2",
        [
          Alcotest.test_case "determinism" `Quick test_soc_determinism;
          Alcotest.test_case "uart delivery" `Quick test_soc_uart_delivery;
          Alcotest.test_case "entries match signals" `Quick test_soc_entries_match_signals;
          Alcotest.test_case "wait-state bug -> k mismatch" `Quick test_wait_state_bug_shows_as_k_mismatch;
          Alcotest.test_case "refresh -> TP mismatch" `Quick test_refresh_shows_as_tp_mismatch;
          Alcotest.test_case "delayed-once localizes" `Quick test_delayed_once_localizes;
          Alcotest.test_case "hotter -> earlier mismatch" `Quick test_higher_temperature_earlier_mismatch;
        ] );
      ( "dma",
        [
          Alcotest.test_case "schedule shape" `Quick test_dma_schedule_shape;
          Alcotest.test_case "merge priority" `Quick test_dma_merge_priority;
          Alcotest.test_case "dma traffic traced" `Quick test_dma_traffic_traced;
        ] );
    ]
