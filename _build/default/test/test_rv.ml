(* Tests for the RV monitor substrate: online verdicts must agree with
   the declarative property semantics, since a Pass verdict is what
   licenses using the property to prune SAT reconstruction. *)

open Tp_rv
open Timeprint

let verdict =
  Alcotest.testable Monitor.pp_verdict (fun (a : Monitor.verdict) b -> a = b)

let sig_of_str = Signal.of_string

(* ------------------------------------------------------------------ *)
(* Unit                                                                *)

let test_deadline_monitor () =
  let spec = Monitor.Deadline { count = 2; before = 4 } in
  Alcotest.check verdict "pass" Pass (Monitor.run ~m:8 spec (sig_of_str "01100000"));
  Alcotest.check verdict "fail: too late" Fail
    (Monitor.run ~m:8 spec (sig_of_str "00011000"));
  Alcotest.check verdict "fail: too few" Fail
    (Monitor.run ~m:8 spec (sig_of_str "01000000"))

let test_max_changes_monitor () =
  let spec = Monitor.Max_changes 2 in
  Alcotest.check verdict "pass" Pass (Monitor.run ~m:8 spec (sig_of_str "01000100"));
  Alcotest.check verdict "fail" Fail (Monitor.run ~m:8 spec (sig_of_str "01010100"))

let test_min_separation_monitor () =
  let spec = Monitor.Min_separation 2 in
  Alcotest.check verdict "pass" Pass (Monitor.run ~m:8 spec (sig_of_str "10010010"));
  Alcotest.check verdict "fail" Fail (Monitor.run ~m:8 spec (sig_of_str "10100000"));
  Alcotest.check verdict "adjacent fails" Fail
    (Monitor.run ~m:8 spec (sig_of_str "11000000"))

let test_pulse_pairs_monitor () =
  let spec = Monitor.Pulse_pairs in
  Alcotest.check verdict "pairs pass" Pass (Monitor.run ~m:8 spec (sig_of_str "01100110"));
  Alcotest.check verdict "lone change fails" Fail
    (Monitor.run ~m:8 spec (sig_of_str "01000000"));
  Alcotest.check verdict "open pair at boundary fails" Fail
    (Monitor.run ~m:8 spec (sig_of_str "00000001"))

let test_window_monitor () =
  let spec = Monitor.Window { lo = 2; hi = 5 } in
  Alcotest.check verdict "pass" Pass (Monitor.run ~m:8 spec (sig_of_str "00110100"));
  Alcotest.check verdict "fail early" Fail (Monitor.run ~m:8 spec (sig_of_str "10000000"));
  Alcotest.check verdict "fail late" Fail (Monitor.run ~m:8 spec (sig_of_str "00000011"))

let test_early_violation () =
  let t = Monitor.create ~m:16 (Monitor.Window { lo = 4; hi = 12 }) in
  ignore (Monitor.step t ~change:false);
  Alcotest.(check bool) "clean so far" false (Monitor.violated_so_far t);
  ignore (Monitor.step t ~change:true);
  Alcotest.(check bool) "violated at cycle 1" true (Monitor.violated_so_far t)

let test_deadline_early_violation () =
  let t = Monitor.create ~m:16 (Monitor.Deadline { count = 1; before = 3 }) in
  for _ = 1 to 3 do
    ignore (Monitor.step t ~change:false)
  done;
  Alcotest.(check bool) "deadline passed without change" true
    (Monitor.violated_so_far t)

let test_multi_trace_cycle_verdicts () =
  let t = Monitor.create ~m:4 (Monitor.Max_changes 1) in
  let feed s = String.iter (fun c -> ignore (Monitor.step t ~change:(c = '1'))) s in
  feed "0100";
  feed "1100";
  feed "0000";
  Alcotest.(check (list verdict))
    "three verdicts"
    [ Monitor.Pass; Monitor.Fail; Monitor.Pass ]
    (Monitor.verdicts t)

let test_monitor_state_resets () =
  (* a violation in one trace-cycle must not leak into the next *)
  let t = Monitor.create ~m:4 Monitor.Pulse_pairs in
  let feed s = String.iter (fun c -> ignore (Monitor.step t ~change:(c = '1'))) s in
  feed "0100";
  feed "0110";
  Alcotest.(check (list verdict)) "fail then pass" [ Monitor.Fail; Monitor.Pass ]
    (Monitor.verdicts t)

let test_cost_sane () =
  List.iter
    (fun spec ->
      let { Monitor.registers; comparators; adders } = Monitor.cost ~m:1024 spec in
      Alcotest.(check bool) "registers positive" true (registers > 0);
      Alcotest.(check bool) "comparators bounded" true (comparators <= 4);
      Alcotest.(check bool) "adders bounded" true (adders <= 4))
    [
      Monitor.Deadline { count = 3; before = 32 };
      Monitor.Max_changes 8;
      Monitor.Min_separation 4;
      Monitor.Pulse_pairs;
      Monitor.Window { lo = 0; hi = 100 };
    ]

(* ------------------------------------------------------------------ *)
(* Monitor ≡ Property                                                  *)

let gen_spec m =
  QCheck.Gen.(
    oneof
      [
        (pair (int_range 0 4) (int_range 0 m) >|= fun (count, before) ->
         Monitor.Deadline { count; before });
        (int_range 0 5 >|= fun n -> Monitor.Max_changes n);
        (int_range 0 4 >|= fun n -> Monitor.Min_separation n);
        return Monitor.Pulse_pairs;
        (pair (int_bound (m - 1)) (int_bound (m - 1)) >|= fun (a, b) ->
         Monitor.Window { lo = min a b; hi = max a b });
      ])

let prop_monitor_equals_property =
  let m = 10 in
  QCheck.Test.make ~count:400
    ~name:"monitor verdict = property semantics"
    QCheck.(
      pair
        (make ~print:(Format.asprintf "%a" Monitor.pp_spec) (gen_spec m))
        (int_bound ((1 lsl m) - 1)))
    (fun (spec, mask) ->
      let s = Signal.of_bitvec (Tp_bitvec.Bitvec.of_int ~width:m mask) in
      let verdict = Monitor.run ~m spec s in
      let holds = Property.eval (Monitor.to_property spec) s in
      (verdict = Monitor.Pass) = holds)

let prop_pass_prunes_soundly =
  (* if the monitor passed, adding its property to reconstruction keeps
     the true signal in the solution set *)
  let m = 10 in
  QCheck.Test.make ~count:60 ~name:"Pass verdict licenses sound pruning"
    QCheck.(
      pair
        (make ~print:(Format.asprintf "%a" Monitor.pp_spec) (gen_spec m))
        (int_bound ((1 lsl m) - 1)))
    (fun (spec, mask) ->
      let s = Signal.of_bitvec (Tp_bitvec.Bitvec.of_int ~width:m mask) in
      QCheck.assume (Monitor.run ~m spec s = Monitor.Pass);
      let e = Encoding.random_constrained ~m ~b:9 ~seed:mask () in
      let entry = Logger.abstract e s in
      let pb =
        Reconstruct.problem ~assume:[ Monitor.to_property spec ] e entry
      in
      let { Reconstruct.signals; complete } = Reconstruct.enumerate pb in
      complete && List.exists (Signal.equal s) signals)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "rv"
    [
      ( "monitors",
        [
          Alcotest.test_case "deadline" `Quick test_deadline_monitor;
          Alcotest.test_case "max changes" `Quick test_max_changes_monitor;
          Alcotest.test_case "min separation" `Quick test_min_separation_monitor;
          Alcotest.test_case "pulse pairs" `Quick test_pulse_pairs_monitor;
          Alcotest.test_case "window" `Quick test_window_monitor;
          Alcotest.test_case "early violation" `Quick test_early_violation;
          Alcotest.test_case "deadline early violation" `Quick test_deadline_early_violation;
          Alcotest.test_case "multi trace-cycle verdicts" `Quick test_multi_trace_cycle_verdicts;
          Alcotest.test_case "state resets" `Quick test_monitor_state_resets;
          Alcotest.test_case "hardware cost" `Quick test_cost_sane;
        ] );
      ( "monitor-property-agreement",
        qt [ prop_monitor_equals_property; prop_pass_prunes_soundly ] );
    ]
