(* Direct unit and property tests for the solver's internal containers
   (Vec, Heap) — exercised indirectly everywhere, pinned down here. *)

open Tp_sat

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_push_pop () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "last" 100 (Vec.last v);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "size after pop" 99 (Vec.size v);
  Alcotest.(check int) "get" 50 (Vec.get v 49)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v (-1) 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () ->
      Vec.clear v;
      ignore (Vec.pop v))

let test_vec_swap_remove () =
  let v = Vec.of_list ~dummy:0 [ 10; 20; 30; 40 ] in
  Vec.swap_remove v 1;
  Alcotest.(check (list int)) "order after swap remove" [ 10; 40; 30 ]
    (Vec.to_list v)

let test_vec_shrink_filter () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "filtered" [ 2; 4; 6 ] (Vec.to_list v);
  Vec.shrink v 1;
  Alcotest.(check (list int)) "shrunk" [ 2 ] (Vec.to_list v)

let prop_vec_model =
  (* Vec behaves like a list under a random push/pop script *)
  QCheck.Test.make ~count:300 ~name:"Vec = list model"
    QCheck.(list (pair bool small_int))
    (fun script ->
      let v = Vec.create ~dummy:0 () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Vec.push v x;
            model := !model @ [ x ]
          end
          else if !model <> [] then begin
            let got = Vec.pop v in
            let expect = List.nth !model (List.length !model - 1) in
            assert (got = expect);
            model := List.filteri (fun i _ -> i < List.length !model - 1) !model
          end)
        script;
      Vec.to_list v = !model)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_extracts_max () =
  let scores = [| 3.; 1.; 4.; 1.5; 9.; 2.; 6. |] in
  let h = Heap.create (Array.length scores) ~score:(fun i -> scores.(i)) in
  Array.iteri (fun i _ -> Heap.insert h i) scores;
  let order = List.init (Array.length scores) (fun _ -> Heap.remove_max h) in
  let sorted =
    List.sort (fun a b -> Float.compare scores.(b) scores.(a))
      (List.init (Array.length scores) Fun.id)
  in
  Alcotest.(check (list int)) "descending score order" sorted order;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.check_raises "remove from empty" Not_found (fun () ->
      ignore (Heap.remove_max h))

let test_heap_update_after_bump () =
  let scores = [| 1.; 2.; 3. |] in
  let h = Heap.create 3 ~score:(fun i -> scores.(i)) in
  List.iter (Heap.insert h) [ 0; 1; 2 ];
  scores.(0) <- 10.;
  Heap.update h 0;
  Alcotest.(check int) "bumped element first" 0 (Heap.remove_max h)

let test_heap_duplicate_insert () =
  let h = Heap.create 4 ~score:float_of_int in
  Heap.insert h 2;
  Heap.insert h 2;
  Alcotest.(check int) "no duplicates" 1 (Heap.size h);
  Alcotest.(check bool) "mem" true (Heap.mem h 2);
  ignore (Heap.remove_max h);
  Alcotest.(check bool) "gone" false (Heap.mem h 2)

let test_heap_grow () =
  let scores = ref (Array.make 4 0.) in
  let h = Heap.create 4 ~score:(fun i -> !scores.(i)) in
  scores := Array.init 100 float_of_int;
  Heap.grow h 100;
  for i = 0 to 99 do
    Heap.insert h i
  done;
  Alcotest.(check int) "max of grown heap" 99 (Heap.remove_max h)

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap drains in score order"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 1000))
    (fun xs ->
      let scores = Array.of_list (List.map float_of_int xs) in
      let h = Heap.create (Array.length scores) ~score:(fun i -> scores.(i)) in
      Array.iteri (fun i _ -> Heap.insert h i) scores;
      let drained = ref [] in
      while not (Heap.is_empty h) do
        drained := scores.(Heap.remove_max h) :: !drained
      done;
      (* drained is built reversed, so it must be ascending *)
      List.sort Float.compare !drained = !drained)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sat-structures"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "shrink/filter" `Quick test_vec_shrink_filter;
        ] );
      ( "heap",
        [
          Alcotest.test_case "extracts max" `Quick test_heap_extracts_max;
          Alcotest.test_case "update after bump" `Quick test_heap_update_after_bump;
          Alcotest.test_case "duplicate insert" `Quick test_heap_duplicate_insert;
          Alcotest.test_case "grow" `Quick test_heap_grow;
        ] );
      ("props", qt [ prop_vec_model; prop_heap_sorts ]);
    ]
