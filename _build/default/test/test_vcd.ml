(* Tests for the VCD reader/writer and the VCD → timeprint pipeline. *)

open Timeprint

let sample_vcd =
  {|$date
  today
$end
$version
  handwritten
$end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 " sig $end
$var wire 8 # bus [7:0] $end
$scope module sub $end
$var wire 1 $ sig $end
$upscope $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
0"
b00000000 #
0$
$end
#5
1!
1"
#10
0!
b10100001 #
#15
1!
0"
#20
0!
1$
|}

let parsed () =
  match Tp_vcd.Vcd.parse sample_vcd with
  | Ok w -> w
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_vars () =
  let w = parsed () in
  let names = List.map (fun v -> v.Tp_vcd.Vcd.name) (Tp_vcd.Vcd.vars w) in
  Alcotest.(check (list string)) "hierarchical names"
    [ "top.clk"; "top.sig"; "top.bus"; "top.sub.sig" ]
    names;
  Alcotest.(check int) "timescale 1ns" 1_000_000 (Tp_vcd.Vcd.timescale_fs w)

let test_find_var () =
  let w = parsed () in
  (match Tp_vcd.Vcd.find_var w "top.sub.sig" with
  | Some v -> Alcotest.(check string) "qualified" "$" v.Tp_vcd.Vcd.id
  | None -> Alcotest.fail "qualified lookup failed");
  (* "sig" is ambiguous (top.sig and top.sub.sig) *)
  Alcotest.(check bool) "ambiguous short name" true
    (Tp_vcd.Vcd.find_var w "sig" = None);
  (* "clk" is unambiguous *)
  match Tp_vcd.Vcd.find_var w "clk" with
  | Some v -> Alcotest.(check string) "short name" "!" v.Tp_vcd.Vcd.id
  | None -> Alcotest.fail "short lookup failed"

let test_changes () =
  let w = parsed () in
  let evs = Tp_vcd.Vcd.changes w ~id:"\"" in
  Alcotest.(check int) "three events" 3 (List.length evs);
  Alcotest.(check bool) "last is 0 at t=15" true
    (match List.rev evs with (15, Tp_vcd.Vcd.V0) :: _ -> true | _ -> false)

let test_vector_lsb () =
  let w = parsed () in
  let evs = Tp_vcd.Vcd.changes w ~id:"#" in
  (* b10100001 at t=10: lsb = 1 *)
  Alcotest.(check bool) "vector lsb tracked" true
    (List.exists (fun (t, v) -> t = 10 && v = Tp_vcd.Vcd.V1) evs)

let test_sample () =
  let w = parsed () in
  match Tp_vcd.Vcd.sample w ~name:"top.sig" ~clock_period:5 ~samples:4 () with
  | Error e -> Alcotest.fail e
  | Ok values ->
      (* samples at t = 5, 10, 15, 20: sig = 1, 1, 0, 0 *)
      Alcotest.(check (list bool)) "sampled" [ true; true; false; false ]
        (Array.to_list values)

let test_writer_roundtrip () =
  let values = [| true; true; false; true; false; false; true; true |] in
  let text = Tp_vcd.Vcd.of_values ~name:"s" ~clock_period:10 values in
  match Tp_vcd.Vcd.parse text with
  | Error e -> Alcotest.fail e
  | Ok w -> (
      match Tp_vcd.Vcd.sample w ~name:"top.s" ~clock_period:10 ~samples:8 () with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check (list bool)) "roundtrip" (Array.to_list values)
            (Array.to_list back))

let test_vcd_to_timeprint_pipeline () =
  (* dump a waveform, parse it back, split into trace-cycles, log and
     reconstruct: the loop a user closes with a real simulator dump *)
  let m = 16 in
  let enc = Encoding.random_constrained ~m ~b:10 ~seed:12 () in
  let signal = Signal.of_changes ~m [ 2; 3; 9; 10 ] in
  let text = Tp_vcd.Vcd.of_signal ~name:"st" ~clock_period:2 ~initial:false signal in
  match Tp_vcd.Vcd.parse text with
  | Error e -> Alcotest.fail e
  | Ok w -> (
      match Tp_vcd.Vcd.to_signal w ~name:"top.st" ~clock_period:2 ~m () with
      | Error e -> Alcotest.fail e
      | Ok [ recovered ] ->
          Alcotest.(check bool) "signal recovered from VCD" true
            (Signal.equal recovered signal);
          let entry = Logger.abstract enc recovered in
          let pb = Reconstruct.problem ~assume:[ Property.pulse_pairs ] enc entry in
          (match Reconstruct.enumerate pb with
          | { Reconstruct.signals = [ s ]; _ } ->
              Alcotest.(check bool) "reconstructed" true (Signal.equal s signal)
          | { Reconstruct.signals; _ } ->
              Alcotest.failf "expected unique reconstruction, got %d"
                (List.length signals))
      | Ok l -> Alcotest.failf "expected 1 trace-cycle, got %d" (List.length l))

let test_parse_errors () =
  (match Tp_vcd.Vcd.parse "#notatime" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad time accepted");
  match Tp_vcd.Vcd.parse "$timescale 1fortnight $end" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad timescale accepted"

let test_timescales () =
  List.iter
    (fun (text, expect) ->
      match Tp_vcd.Vcd.parse (Printf.sprintf "$timescale %s $end" text) with
      | Ok w -> Alcotest.(check int) text expect (Tp_vcd.Vcd.timescale_fs w)
      | Error e -> Alcotest.fail e)
    [ ("1ns", 1_000_000); ("10ps", 10_000); ("100 us", 100_000_000_000); ("1fs", 1) ]

let () =
  Alcotest.run "vcd"
    [
      ( "parse",
        [
          Alcotest.test_case "vars and scopes" `Quick test_parse_vars;
          Alcotest.test_case "find_var" `Quick test_find_var;
          Alcotest.test_case "changes" `Quick test_changes;
          Alcotest.test_case "vector lsb" `Quick test_vector_lsb;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "timescales" `Quick test_timescales;
        ] );
      ( "sample-write",
        [
          Alcotest.test_case "sample" `Quick test_sample;
          Alcotest.test_case "writer roundtrip" `Quick test_writer_roundtrip;
          Alcotest.test_case "vcd -> timeprint pipeline" `Quick test_vcd_to_timeprint_pipeline;
        ] );
    ]
