test/test_vcd.ml: Alcotest Array Encoding List Logger Printf Property Reconstruct Signal Timeprint Tp_vcd
