test/test_sat_structures.ml: Alcotest Array Float Fun Heap List QCheck QCheck_alcotest Tp_sat Vec
