test/test_rv.ml: Alcotest Encoding Format List Logger Monitor Property QCheck QCheck_alcotest Reconstruct Signal String Timeprint Tp_bitvec Tp_rv
