test/test_bitvec.ml: Alcotest Array Bitvec F2_matrix Format List QCheck QCheck_alcotest Tp_bitvec
