test/test_sat.ml: Alcotest Allsat Array Cardinality Cnf Dimacs Drat Format Fun List Lit Printf QCheck QCheck_alcotest Solver String Tp_sat Tseitin
