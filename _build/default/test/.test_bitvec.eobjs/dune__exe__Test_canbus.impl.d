test/test_canbus.ml: Alcotest Array Bus Crc15 Encoding Forensics Format Frame List Log_entry Logger Message Msglog Printf QCheck QCheck_alcotest Reconstruct Scheduler String Timeprint Tp_canbus
