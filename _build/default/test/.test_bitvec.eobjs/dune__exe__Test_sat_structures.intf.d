test/test_sat_structures.mli:
