test/test_canbus.mli:
