test/test_soc.ml: Agglog Ahb Alcotest Array Cpu Encoding Hashtbl Isa List Log_entry Logger Option Printf Property Random Reconstruct Signal Soc_system Sram Temperature Timeprint Tp_bitvec Tp_soc Uart
