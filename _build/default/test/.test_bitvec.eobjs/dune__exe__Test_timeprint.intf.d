test/test_timeprint.mli:
