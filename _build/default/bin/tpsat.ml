(* tpsat — the bundled CDCL solver as a standalone tool.

   Reads extended DIMACS (CNF plus Cryptominisat-style `x…` XOR lines,
   the format `timeprint dimacs` emits) from a file or stdin and prints
   a standard s/v answer. With [-models N], further models are produced
   through blocking clauses on the same (incremental) solver; [-stats]
   prints the solver-work delta each query cost as `c` comment lines.
   [-assume "LITS"] solves under DIMACS assumption literals and, on an
   UNSAT answer, reports the final-conflict core. *)

let usage =
  "usage: tpsat [-budget N] [-models N] [-assume \"LITS\"] [-stats] [FILE | -]"

let () =
  let budget = ref max_int in
  let max_models = ref 1 in
  let assumptions = ref [] in
  let show_stats = ref false in
  let path = ref None in
  let rec parse = function
    | [] -> ()
    | "-budget" :: n :: rest ->
        (match int_of_string_opt n with
        | Some b when b > 0 -> budget := b
        | _ ->
            prerr_endline usage;
            exit 2);
        parse rest
    | "-models" :: n :: rest ->
        (match int_of_string_opt n with
        | Some m when m > 0 -> max_models := m
        | _ ->
            prerr_endline usage;
            exit 2);
        parse rest
    | "-assume" :: lits :: rest ->
        String.split_on_char ' ' lits
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some n when n <> 0 ->
                   assumptions := Tp_sat.Lit.of_dimacs n :: !assumptions
               | _ ->
                   prerr_endline usage;
                   exit 2);
        parse rest
    | "-stats" :: rest ->
        show_stats := true;
        parse rest
    | [ p ] -> path := Some p
    | _ ->
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let assumptions = List.rev !assumptions in
  let text =
    match !path with
    | None | Some "-" -> In_channel.input_all stdin
    | Some p -> In_channel.with_open_text p In_channel.input_all
  in
  match Tp_sat.Dimacs.parse_string text with
  | exception Failure e ->
      Printf.eprintf "c parse error: %s\n" e;
      exit 2
  | cnf -> (
      let solver = Tp_sat.Solver.of_cnf cnf in
      let nvars = Tp_sat.Cnf.nvars cnf in
      let query = ref 0 in
      let solve () =
        let before = Tp_sat.Solver.stats solver in
        let r = Tp_sat.Solver.solve ~conflict_budget:!budget ~assumptions solver in
        incr query;
        if !show_stats then begin
          let a = Tp_sat.Solver.stats solver in
          Printf.printf
            "c query %d: conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d\n"
            !query
            (a.conflicts - before.conflicts)
            (a.decisions - before.decisions)
            (a.propagations - before.propagations)
            (a.restarts - before.restarts)
            a.learnt
        end;
        r
      in
      let print_model () =
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v";
        for v = 0 to nvars - 1 do
          Buffer.add_string buf
            (Printf.sprintf " %d" (if Tp_sat.Solver.value solver v then v + 1 else -(v + 1)))
        done;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      in
      let print_core () =
        if assumptions <> [] then begin
          let core = Tp_sat.Solver.unsat_core solver in
          print_endline
            ("c core:"
            ^ String.concat ""
                (List.map
                   (fun l -> " " ^ string_of_int (Tp_sat.Lit.to_dimacs l))
                   core))
        end
      in
      match solve () with
      | Unsat ->
          print_core ();
          print_endline "s UNSATISFIABLE";
          exit 20
      | Unknown ->
          print_endline "s UNKNOWN";
          exit 0
      | Sat ->
          print_endline "s SATISFIABLE";
          print_model ();
          (* optional further models via blocking clauses *)
          let rec more found =
            if found < !max_models then begin
              let blocking =
                List.init nvars (fun v ->
                    Tp_sat.Lit.make v (not (Tp_sat.Solver.value solver v)))
              in
              Tp_sat.Solver.add_clause solver blocking;
              match solve () with
              | Sat ->
                  print_model ();
                  more (found + 1)
              | Unsat | Unknown -> ()
            end
          in
          more 1;
          exit 10)
