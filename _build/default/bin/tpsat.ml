(* tpsat — the bundled CDCL solver as a standalone tool.

   Reads extended DIMACS (CNF plus Cryptominisat-style `x…` XOR lines,
   the format `timeprint dimacs` emits) from a file or stdin and prints
   a standard s/v answer. *)

let usage = "usage: tpsat [-budget N] [-models N] [FILE | -]"

let () =
  let budget = ref max_int in
  let max_models = ref 1 in
  let path = ref None in
  let rec parse = function
    | [] -> ()
    | "-budget" :: n :: rest ->
        (match int_of_string_opt n with
        | Some b when b > 0 -> budget := b
        | _ ->
            prerr_endline usage;
            exit 2);
        parse rest
    | "-models" :: n :: rest ->
        (match int_of_string_opt n with
        | Some m when m > 0 -> max_models := m
        | _ ->
            prerr_endline usage;
            exit 2);
        parse rest
    | [ p ] -> path := Some p
    | _ ->
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let text =
    match !path with
    | None | Some "-" -> In_channel.input_all stdin
    | Some p -> In_channel.with_open_text p In_channel.input_all
  in
  match Tp_sat.Dimacs.parse_string text with
  | exception Failure e ->
      Printf.eprintf "c parse error: %s\n" e;
      exit 2
  | cnf -> (
      let solver = Tp_sat.Solver.of_cnf cnf in
      let nvars = Tp_sat.Cnf.nvars cnf in
      let print_model () =
        let buf = Buffer.create 256 in
        Buffer.add_string buf "v";
        for v = 0 to nvars - 1 do
          Buffer.add_string buf
            (Printf.sprintf " %d" (if Tp_sat.Solver.value solver v then v + 1 else -(v + 1)))
        done;
        Buffer.add_string buf " 0";
        print_endline (Buffer.contents buf)
      in
      match Tp_sat.Solver.solve ~conflict_budget:!budget solver with
      | Unsat ->
          print_endline "s UNSATISFIABLE";
          exit 20
      | Unknown ->
          print_endline "s UNKNOWN";
          exit 0
      | Sat ->
          print_endline "s SATISFIABLE";
          print_model ();
          (* optional further models via blocking clauses *)
          let rec more found =
            if found < !max_models then begin
              let blocking =
                List.init nvars (fun v ->
                    Tp_sat.Lit.make v (not (Tp_sat.Solver.value solver v)))
              in
              Tp_sat.Solver.add_clause solver blocking;
              match Tp_sat.Solver.solve ~conflict_budget:!budget solver with
              | Sat ->
                  print_model ();
                  more (found + 1)
              | Unsat | Unknown -> ()
            end
          in
          more 1;
          exit 10)
