bin/tpsat.ml: Array Buffer In_channel List Printf Sys Tp_sat
