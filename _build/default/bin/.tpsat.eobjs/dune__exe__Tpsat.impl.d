bin/tpsat.ml: Array Buffer In_channel List Printf String Sys Tp_sat
