bin/tpsat.mli:
