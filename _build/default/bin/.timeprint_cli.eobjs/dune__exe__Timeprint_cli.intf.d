bin/timeprint_cli.mli:
