type entry = { time : float; message : Message.t }

let of_timeline ?(latency = fun _ _ -> 0.) (tl : Bus.timeline) =
  let counts = Hashtbl.create 8 in
  List.map
    (fun { Bus.message; end_bit; _ } ->
      let inst =
        match Hashtbl.find_opt counts message.Message.name with
        | Some n -> n
        | None -> 0
      in
      Hashtbl.replace counts message.Message.name (inst + 1);
      { time = Bus.time_of_bit tl end_bit +. latency message inst; message })
    tl.Bus.transmissions

let to_string e =
  let m = e.message in
  let data =
    String.concat " "
      (List.map (Printf.sprintf "%02X") (Array.to_list m.Message.data))
  in
  Printf.sprintf "%.6fs %s(%d)d %d%s" e.time m.Message.name m.Message.id
    (Message.dlc m)
    (if data = "" then "" else " " ^ data)

let parse line =
  try
    Scanf.sscanf line "%fs %[^(](%d)d %d %[0-9A-Fa-f ]"
      (fun time name id dlc hex ->
        let bytes =
          List.filter_map
            (fun tok ->
              if tok = "" then None else Some (int_of_string ("0x" ^ tok)))
            (String.split_on_char ' ' hex)
        in
        if List.length bytes <> dlc then Error "dlc/data mismatch"
        else
          Ok
            {
              time;
              message = Message.make ~name ~id ~data:(Array.of_list bytes);
            })
  with
  | Scanf.Scan_failure _ | End_of_file | Failure _ -> (
      (* retry without data bytes (dlc = 0) *)
      try
        Scanf.sscanf line "%fs %[^(](%d)d %d" (fun time name id dlc ->
            if dlc <> 0 then Error "missing data bytes"
            else Ok { time; message = Message.make ~name ~id ~data:[||] })
      with Scanf.Scan_failure _ | End_of_file | Failure _ ->
        Error ("unparseable log line: " ^ line))

let pp ppf e = Format.pp_print_string ppf (to_string e)
