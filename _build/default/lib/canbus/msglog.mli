(** Software-level message logs: the coarse record ECUs keep.

    The §5.2.1 listing is exactly this artifact — per-message receive
    timestamps with millisecond-ish trustworthiness, far from the
    bit-accurate wire truth. The forensic question arises because such
    logs disagree across nodes; the timeprint is the independent
    arbiter. Entries carry an optional reporting latency to model the
    software path between the CAN controller and the logger. *)

type entry = { time : float; message : Message.t }
(** [time] in seconds: when software recorded the message. *)

val of_timeline :
  ?latency:(Message.t -> int -> float) -> Bus.timeline -> entry list
(** One entry per completed transmission, stamped at frame end plus
    [latency msg instance_index] seconds (default 0). *)

val to_string : entry -> string
(** Paper-style line: ["2.253552s EngineData(100)d 8 00 00 19 …"]. *)

val parse : string -> (entry, string) result
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> entry -> unit
