type t = { name : string; id : int; data : int array }

let make ~name ~id ~data =
  if id < 0 || id > 0x7ff then invalid_arg "Message.make: 11-bit id required";
  if Array.length data > 8 then invalid_arg "Message.make: at most 8 data bytes";
  Array.iter
    (fun b -> if b < 0 || b > 0xff then invalid_arg "Message.make: byte range")
    data;
  { name; id; data }

let dlc m = Array.length m.data

let equal a b = a.name = b.name && a.id = b.id && a.data = b.data

let pp ppf m =
  Format.fprintf ppf "%s(%d)d %d" m.name m.id (dlc m);
  Array.iter (fun b -> Format.fprintf ppf " %02X" b) m.data

(* The messages appearing in the §5.2.1 log listing. *)
let gearbox_info = make ~name:"GearBoxInfo" ~id:1020 ~data:[| 0x01 |]

let engine_data =
  make ~name:"EngineData" ~id:100
    ~data:[| 0x00; 0x00; 0x19; 0x00; 0x00; 0x00; 0x00; 0x00 |]

let abs_data =
  make ~name:"ABSdata" ~id:201 ~data:[| 0x00; 0x00; 0x00; 0x00; 0x00; 0x00 |]

let ignition_info = make ~name:"Ignition_Info" ~id:103 ~data:[| 0x01; 0x00 |]
