type request = { message : Message.t; release : int }
type transmission = { message : Message.t; start_bit : int; end_bit : int }
type timeline = { wire : bool array; transmissions : transmission list; bitrate : int }

let simulate ?(stuffed = false) ?(ifs = 3) ~bitrate ~duration requests =
  if duration <= 0 then invalid_arg "Bus.simulate: duration";
  let wire = Array.make duration true in
  let pending =
    ref (List.stable_sort (fun a b -> Int.compare a.release b.release) requests)
  in
  let transmissions = ref [] in
  let now = ref 0 in
  let rec step () =
    match !pending with
    | [] -> ()
    | _ ->
        let ready, not_ready =
          List.partition (fun r -> r.release <= !now) !pending
        in
        (match ready with
        | [] ->
            (* bus idle until the next release *)
            let next =
              List.fold_left (fun acc r -> min acc r.release) max_int not_ready
            in
            now := next
        | _ ->
            (* arbitration: lowest identifier wins *)
            let winner =
              List.fold_left
                (fun (best : request) (r : request) ->
                  if r.message.Message.id < best.message.Message.id then r else best)
                (List.hd ready) (List.tl ready)
            in
            pending :=
              not_ready @ List.filter (fun r -> r != winner) ready;
            let bits = Frame.to_bits ~stuffed (Frame.of_message winner.message) in
            let len = List.length bits in
            if !now + len <= duration then begin
              List.iteri (fun i b -> wire.(!now + i) <- b) bits;
              transmissions :=
                { message = winner.message; start_bit = !now; end_bit = !now + len }
                :: !transmissions;
              now := !now + len + ifs
            end
            else now := duration (* frame does not fit: drop *));
        if !now < duration then step ()
  in
  step ();
  { wire; transmissions = List.rev !transmissions; bitrate }

let time_of_bit t bit = float_of_int bit /. float_of_int t.bitrate
let bit_of_time t s = int_of_float (Float.round (s *. float_of_int t.bitrate))
