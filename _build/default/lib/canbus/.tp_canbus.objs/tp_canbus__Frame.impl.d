lib/canbus/frame.ml: Array Crc15 Format List Message Printf Result
