lib/canbus/message.ml: Array Format
