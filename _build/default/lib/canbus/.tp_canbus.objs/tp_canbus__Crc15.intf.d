lib/canbus/crc15.mli:
