lib/canbus/scheduler.ml: Bus List Message Random
