lib/canbus/message.mli: Format
