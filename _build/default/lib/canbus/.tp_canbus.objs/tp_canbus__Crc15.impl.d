lib/canbus/crc15.ml: List
