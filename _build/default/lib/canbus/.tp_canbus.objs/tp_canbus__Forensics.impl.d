lib/canbus/forensics.ml: Array Bus Encoding Frame List Logger Property Reconstruct Signal Timeprint
