lib/canbus/msglog.mli: Bus Format Message
