lib/canbus/frame.mli: Format Message
