lib/canbus/bus.mli: Message
