lib/canbus/forensics.mli: Bus Message Timeprint
