lib/canbus/msglog.ml: Array Bus Format Hashtbl List Message Printf Scanf String
