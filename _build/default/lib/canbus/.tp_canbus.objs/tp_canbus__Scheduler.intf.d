lib/canbus/scheduler.mli: Bus Message
