lib/canbus/bus.ml: Array Float Frame Int List Message
