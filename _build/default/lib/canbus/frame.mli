(** CAN 2.0A data-frame bit encoding.

    Wire convention (§5.2.1): [true] is the recessive bus state (idle),
    [false] the dominant state; the start-of-frame bit is dominant, so
    a frame begins with a [1 → 0] edge out of idle. Layout:

    {v
    SOF | ID[10:0] | RTR | IDE | r0 | DLC[3:0] | data | CRC15 |
    CRC-delim | ACK | ACK-delim | EOF (7 recessive)
    v}

    The CRC covers SOF through the last data bit. Bit stuffing (a
    complement bit after five equal bits, SOF through CRC) is optional,
    mirroring the paper's "we ignore bit-stuffing here for simplicity"
    — both paths are implemented and tested. *)

type t = { message : Message.t }

val of_message : Message.t -> t

val to_bits : ?stuffed:bool -> t -> bool list
(** Wire bits in transmission order ([stuffed] defaults to [false]). *)

val length : ?stuffed:bool -> t -> int

val decode : ?stuffed:bool -> bool list -> (Message.t, string) result
(** Parse wire bits back into a message (name is synthesized as
    ["id<n>"]); checks structure and CRC. *)

val crc : t -> int
(** The 15-bit CRC of the frame header + payload. *)

val pp_bits : Format.formatter -> bool list -> unit
(** ['0']/['1'] string, transmission order — the rendering used for
    the [m1] listing in §5.2.1. *)
