(** CANoe-style scenario generation: periodic messages with jitter and
    injected delays.

    The paper generated its exchange with the Vector CANoe "Demo9"
    scenario and "applied manual delays" on top; this module plays that
    role — it produces the {!Bus.request} list for a set of periodic
    messages, with optional per-release jitter and targeted extra
    delays on selected instances. *)

type periodic = {
  message : Message.t;
  period : int;  (** bit times between releases *)
  offset : int;  (** release of instance 0 *)
  jitter : int;  (** uniform release jitter in [0..jitter] bit times *)
}

val periodic :
  ?offset:int -> ?jitter:int -> Message.t -> period:int -> periodic

val requests :
  ?seed:int ->
  duration:int ->
  ?delays:(string * int * int) list ->
  periodic list ->
  Bus.request list
(** All releases falling inside [duration]. [delays] entries
    [(name, instance, extra)] push instance [instance] of the message
    named [name] by [extra] bit times — the paper's manual delay on
    EngineData. *)

val demo_scenario : Message.t list
(** The four §5.2.1 messages. *)

val demo_periodics : periodic list
(** The demo messages with realistic automotive periods (10–100 ms
    ranges scaled to bit times at 5 Mbps). *)
