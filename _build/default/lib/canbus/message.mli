(** Application-level CAN messages: what ECUs exchange and what the
    software log reports. The didactic scenario of §5.2.1 uses four of
    these (GearBoxInfo, EngineData, ABSdata, Ignition_Info). *)

type t = {
  name : string;
  id : int;  (** 11-bit standard identifier, [0 .. 0x7ff] *)
  data : int array;  (** 0–8 payload bytes, each [0 .. 255] *)
}

val make : name:string -> id:int -> data:int array -> t
(** Validates the identifier range and payload length. *)

val dlc : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Paper-style rendering: [EngineData(100)d 8 00 00 19 00 00 00 00 00]. *)

(* The four messages of the paper's CANoe-style scenario. *)
val gearbox_info : t
val engine_data : t
val abs_data : t
val ignition_info : t
