(** CAN CRC-15.

    Generator polynomial
    [x¹⁵ + x¹⁴ + x¹⁰ + x⁸ + x⁷ + x⁴ + x³ + 1] (ISO 11898-1), computed
    over the frame bits from SOF through the last data bit, before bit
    stuffing. *)

val polynomial : int
(** [0x4599], the polynomial's low 15 bits. *)

val compute : bool list -> int
(** CRC of the bit sequence (first bit transmitted first). The result
    fits in 15 bits. *)

val to_bits : int -> bool list
(** The 15 CRC bits in transmission order (MSB first). *)

val check : bool list -> bool
(** [check bits] verifies a sequence that already has its 15 CRC bits
    appended: the CRC of the whole sequence is then zero. *)
