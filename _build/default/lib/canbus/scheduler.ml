type periodic = { message : Message.t; period : int; offset : int; jitter : int }

let periodic ?(offset = 0) ?(jitter = 0) message ~period =
  if period <= 0 then invalid_arg "Scheduler.periodic: period";
  { message; period; offset; jitter }

let requests ?(seed = 1) ~duration ?(delays = []) periodics =
  let rng = Random.State.make [| seed |] in
  let reqs = ref [] in
  List.iter
    (fun p ->
      let rec instance i =
        let base = p.offset + (i * p.period) in
        if base < duration then begin
          let j = if p.jitter > 0 then Random.State.int rng (p.jitter + 1) else 0 in
          let extra =
            List.fold_left
              (fun acc (name, inst, d) ->
                if name = p.message.Message.name && inst = i then acc + d else acc)
              0 delays
          in
          reqs := { Bus.message = p.message; release = base + j + extra } :: !reqs;
          instance (i + 1)
        end
      in
      instance 0)
    periodics;
  List.rev !reqs

let demo_scenario =
  [ Message.engine_data; Message.ignition_info; Message.abs_data; Message.gearbox_info ]

(* Periods in bit times at 5 Mbps: 10 ms = 50_000 bits, etc. *)
let demo_periodics =
  [
    periodic Message.engine_data ~period:5_000 ~offset:400 ~jitter:60;
    periodic Message.ignition_info ~period:7_500 ~offset:900 ~jitter:60;
    periodic Message.abs_data ~period:6_000 ~offset:1_700 ~jitter:60;
    periodic Message.gearbox_info ~period:9_000 ~offset:2_600 ~jitter:60;
  ]
