let polynomial = 0x4599

let compute bits =
  let crc = ref 0 in
  List.iter
    (fun b ->
      let crcnxt = b <> ((!crc lsr 14) land 1 = 1) in
      crc := (!crc lsl 1) land 0x7fff;
      if crcnxt then crc := !crc lxor polynomial)
    bits;
  !crc

let to_bits crc = List.init 15 (fun i -> (crc lsr (14 - i)) land 1 = 1)

let check bits = compute bits = 0
