(* Wire bits: true = recessive (1), false = dominant (0). *)

type t = { message : Message.t }

let of_message message = { message }

let int_bits ~width v = List.init width (fun i -> (v lsr (width - 1 - i)) land 1 = 1)

(* SOF through last data bit: the CRC-covered span. *)
let covered_bits { message = m } =
  let open Message in
  [ false ] (* SOF: dominant *)
  @ int_bits ~width:11 m.id
  @ [ false; false; false ] (* RTR = 0 (data), IDE = 0 (standard), r0 *)
  @ int_bits ~width:4 (dlc m)
  @ List.concat_map (fun b -> int_bits ~width:8 b) (Array.to_list m.data)

let crc f = Crc15.compute (covered_bits f)

(* Insert a complement bit after five consecutive equal bits; stuff
   bits participate in the run-length count. *)
let stuff bits =
  let rec go run_val run_len = function
    | [] -> []
    | b :: rest ->
        if run_len = 5 then
          (* emit stuff bit first, then re-examine b with reset count *)
          let sb = not run_val in
          sb :: go sb 1 (b :: rest)
        else if b = run_val then b :: go run_val (run_len + 1) rest
        else b :: go b 1 rest
  in
  match bits with [] -> [] | b :: rest -> b :: go b 1 rest

let destuff bits =
  let rec go run_val run_len = function
    | [] -> Ok []
    | b :: rest ->
        if run_len = 5 then
          if b = run_val then Error "stuffing violation: six equal bits"
          else go b 1 rest (* b is the stuff bit: drop it *)
        else if b = run_val then
          Result.map (fun tl -> b :: tl) (go run_val (run_len + 1) rest)
        else Result.map (fun tl -> b :: tl) (go b 1 rest)
  in
  match bits with
  | [] -> Ok []
  | b :: rest -> Result.map (fun tl -> b :: tl) (go b 1 rest)

let tail_bits =
  [ true ] (* CRC delimiter *)
  @ [ false ] (* ACK slot: driven dominant by a receiving node *)
  @ [ true ] (* ACK delimiter *)
  @ [ true; true; true; true; true; true; true ] (* EOF *)

let to_bits ?(stuffed = false) f =
  let body = covered_bits f @ Crc15.to_bits (crc f) in
  (if stuffed then stuff body else body) @ tail_bits

let length ?stuffed f = List.length (to_bits ?stuffed f)

let bits_to_int bits = List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0 bits

let rec take n = function
  | [] -> if n = 0 then [] else invalid_arg "take"
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let rec drop n xs =
  if n = 0 then xs
  else match xs with [] -> invalid_arg "drop" | _ :: rest -> drop (n - 1) rest

let decode ?(stuffed = false) bits =
  (* split off the un-stuffed tail: delimiter + ACK + delimiter + EOF *)
  let tail_len = List.length tail_bits in
  if List.length bits < tail_len + 19 then Error "frame too short"
  else begin
    let body_wire = take (List.length bits - tail_len) bits in
    let tail = drop (List.length bits - tail_len) bits in
    let body = if stuffed then destuff body_wire else Ok body_wire in
    match body with
    | Error e -> Error e
    | Ok body ->
        if List.length body < 19 + 15 then Error "frame body too short"
        else begin
          match body with
          | sof :: rest ->
              if sof then Error "missing dominant SOF"
              else begin
                let id = bits_to_int (take 11 rest) in
                let rest = drop 11 rest in
                match rest with
                | rtr :: ide :: _r0 :: rest ->
                    if rtr then Error "RTR frames not supported"
                    else if ide then Error "extended frames not supported"
                    else begin
                      let dlc = bits_to_int (take 4 rest) in
                      let rest = drop 4 rest in
                      if dlc > 8 then Error "DLC out of range"
                      else if List.length rest <> (8 * dlc) + 15 then
                        Error "length mismatch"
                      else begin
                        let data =
                          Array.init dlc (fun i ->
                              bits_to_int (take 8 (drop (8 * i) rest)))
                        in
                        if not (Crc15.check body) then Error "CRC mismatch"
                        else if
                          not (List.for_all2 ( = ) tail tail_bits)
                        then Error "malformed frame tail"
                        else
                          Ok
                            (Message.make
                               ~name:(Printf.sprintf "id%d" id)
                               ~id ~data)
                      end
                    end
                | _ -> Error "truncated header"
              end
          | [] -> Error "empty frame"
        end
  end

let pp_bits ppf bits =
  List.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) bits
