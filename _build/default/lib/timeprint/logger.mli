(** The logging procedure [α̃ : Sig → Log] (§4) and its streaming form.

    {!abstract} is the one-shot mathematical definition:
    [α̃(S) = (Σ_{i : S(i)=1} TS(i), |{i | S(i)=1}|)].

    {!t} is the running form that mirrors the agg-log hardware: a
    [b]-bit XOR register plus a change counter, clocked once per cycle,
    emitting one {!Log_entry.t} at each trace-cycle boundary. It is the
    functional reference the {!Tp_soc.Agglog} RTL-level model is tested
    against. *)

val abstract : Encoding.t -> Signal.t -> Log_entry.t
(** [α̃] for one trace-cycle. Raises [Invalid_argument] when the signal
    length differs from the encoding's [m]. *)

val abstract_run : Encoding.t -> Signal.t list -> Log_entry.t list
(** Back-to-back trace-cycles. *)

type t
(** Streaming logger state. *)

val create : Encoding.t -> t

val encoding : t -> Encoding.t

val cycle : t -> int
(** Cycle index within the current trace-cycle, [0 .. m-1]. *)

val completed : t -> Log_entry.t list
(** Entries of completed trace-cycles so far, oldest first. *)

val step : t -> change:bool -> Log_entry.t option
(** Advance one clock-cycle; [change] tells whether the traced signal
    changed this cycle. Returns the finished entry when this step
    closes a trace-cycle. *)

val step_value : t -> bool -> Log_entry.t option
(** Like {!step} but fed with raw signal {e values}: a change is
    detected against the previously seen value (initially [false]). *)

val run_values : Encoding.t -> ?initial:bool -> bool array -> Log_entry.t list
(** Feed a whole waveform through a fresh logger and collect the
    entries of every {e completed} trace-cycle. *)
