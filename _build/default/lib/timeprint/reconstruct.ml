open Tp_bitvec
open Tp_sat

type problem = {
  encoding : Encoding.t;
  entry : Log_entry.t;
  assume : Property.t list;
}

let problem ?(assume = []) encoding entry =
  if Bitvec.width (Log_entry.tp entry) <> Encoding.b encoding then
    invalid_arg "Reconstruct.problem: timeprint width <> encoding b";
  { encoding; entry; assume }

let to_cnf { encoding; entry; assume } =
  let m = Encoding.m encoding and b = Encoding.b encoding in
  let cnf = Cnf.create () in
  let xvars = Array.init m (fun _ -> Cnf.new_var cnf) in
  (* rows of A·x = TP: bit j of the timeprint is the XOR of x_i over
     cycles i whose timestamp has bit j set *)
  let tp = Log_entry.tp entry in
  for j = 0 to b - 1 do
    let vars = ref [] in
    for i = 0 to m - 1 do
      if Bitvec.get (Encoding.timestamp encoding i) j then
        vars := xvars.(i) :: !vars
    done;
    Cnf.add_xor_chunked cnf ~vars:!vars ~parity:(Bitvec.get tp j)
  done;
  (* exactly k changes *)
  Cardinality.exactly cnf (Array.to_list (Array.map Lit.pos xvars)) (Log_entry.k entry);
  (* verified properties prune the space *)
  List.iter
    (fun p -> Property.assert_holds cnf ~m ~xvar:(fun i -> xvars.(i)) p)
    assume;
  (cnf, xvars)

let signal_of_model m xvars value =
  Signal.of_bitvec
    (Bitvec.of_indices ~width:m
       (List.filter (fun i -> value xvars.(i)) (List.init m Fun.id)))

type verdict = [ `Signal of Signal.t | `Unsat | `Unknown ]

let first ?conflict_budget pb =
  let cnf, xvars = to_cnf pb in
  let s = Solver.of_cnf cnf in
  match Solver.solve ?conflict_budget s with
  | Sat -> `Signal (signal_of_model (Encoding.m pb.encoding) xvars (Solver.value s))
  | Unsat -> `Unsat
  | Unknown -> `Unknown

type certified =
  [ `Signal of Signal.t | `Unsat_certified of string | `Unknown ]

let first_certified ?conflict_budget pb : certified =
  let cnf, xvars = to_cnf pb in
  let clausal = Cnf.expand_xors cnf in
  let s = Solver.of_cnf clausal in
  Solver.enable_proof s;
  match Solver.solve ?conflict_budget s with
  | Sat -> `Signal (signal_of_model (Encoding.m pb.encoding) xvars (Solver.value s))
  | Unknown -> `Unknown
  | Unsat -> (
      let proof = Solver.proof s in
      match Drat.check clausal proof with
      | Ok () -> `Unsat_certified proof
      | Error e -> failwith ("Reconstruct.first_certified: bad certificate: " ^ e))

type enumeration = { signals : Signal.t list; complete : bool }

let enumerate ?max_solutions ?conflict_budget pb =
  let m = Encoding.m pb.encoding in
  let cnf, xvars = to_cnf pb in
  let s = Solver.of_cnf cnf in
  let { Allsat.models; complete } =
    Allsat.enumerate ?max_models:max_solutions ?conflict_budget s
      ~project:(Array.to_list xvars)
  in
  let signal_of model =
    Signal.of_bitvec
      (Bitvec.of_indices ~width:m
         (List.filter (fun i -> model.(i)) (List.init m Fun.id)))
  in
  { signals = List.map signal_of models; complete }

let count ?max_solutions pb =
  List.length (enumerate ?max_solutions pb).signals

type check_result =
  [ `Holds_in_all | `Violated_in_all | `Mixed | `Vacuous | `Unknown ]

let exists_with ?conflict_budget pb extra_polarity prop =
  let cnf, xvars = to_cnf pb in
  let m = Encoding.m pb.encoding in
  let xvar i = xvars.(i) in
  (match extra_polarity with
  | `Holds -> Property.assert_holds cnf ~m ~xvar prop
  | `Violated -> Property.assert_violated cnf ~m ~xvar prop);
  match Solver.solve ?conflict_budget (Solver.of_cnf cnf) with
  | Sat -> `Yes
  | Unsat -> `No
  | Unknown -> `Unknown

let check ?conflict_budget pb prop =
  let some_sat = exists_with ?conflict_budget pb `Holds prop in
  let some_viol = exists_with ?conflict_budget pb `Violated prop in
  match (some_sat, some_viol) with
  | `Yes, `Yes -> `Mixed
  | `Yes, `No -> `Holds_in_all
  | `No, `Yes -> `Violated_in_all
  | `No, `No -> `Vacuous
  | `Unknown, _ | _, `Unknown -> `Unknown

let pp_check_result ppf r =
  Format.pp_print_string ppf
    (match r with
    | `Holds_in_all -> "holds in all reconstructions"
    | `Violated_in_all -> "violated in all reconstructions"
    | `Mixed -> "holds in some reconstructions, violated in others"
    | `Vacuous -> "no reconstruction exists"
    | `Unknown -> "unknown (budget exhausted)")
