(** Signal Reconstruction (SR): the SAT-based preimage computation of §4.2.

    Given an encoding [TS], a log entry [(TP, k)] and a set of verified
    properties, find the signals [S] with [α̃(S) = (TP, k)] that satisfy
    the properties. The reduction introduces one variable per clock
    cycle, one XOR clause per timeprint bit (the rows of [A·x = TP]),
    the Sinz-encoded [exactly-k] cardinality constraint, and the
    property clauses — precisely the Cryptominisat input fragment used
    by the paper. *)

type problem = {
  encoding : Encoding.t;
  entry : Log_entry.t;
  assume : Property.t list;
      (** properties known to hold (RV verdicts, diagnostics, failure
          analysis) — they prune the search space *)
}

val problem : ?assume:Property.t list -> Encoding.t -> Log_entry.t -> problem
(** Raises [Invalid_argument] when the timeprint width differs from the
    encoding's [b]. *)

val to_cnf : problem -> Tp_sat.Cnf.t * int array
(** The reduction; the array maps cycle [i] to its CNF variable. *)

type verdict = [ `Signal of Signal.t | `Unsat | `Unknown ]

val first : ?conflict_budget:int -> problem -> verdict
(** One reconstruction (the paper's [.1] columns), or [`Unsat] when no
    signal abstracts to the entry under the assumptions. *)

type certified =
  [ `Signal of Signal.t
  | `Unsat_certified of string  (** a DRAT refutation, already verified *)
  | `Unknown ]

val first_certified : ?conflict_budget:int -> problem -> certified
(** Like {!first}, but an [`Unsat] answer comes with an independently
    checked DRAT certificate — the artifact to archive when the answer
    assigns liability (§5.2.1's "UNSAT in 1.597 s" becomes a verifiable
    statement rather than the solver's word). The reduction's XOR rows
    are compiled to plain CNF for this query, since DRAT covers only
    clausal reasoning. Raises [Failure] in the (never-observed) event
    that the produced certificate fails its check. *)

type enumeration = {
  signals : Signal.t list;  (** discovery order *)
  complete : bool;  (** [true] iff provably all solutions were found *)
}

val enumerate :
  ?max_solutions:int -> ?conflict_budget:int -> problem -> enumeration
(** All reconstructions, or the first [max_solutions] (the paper's
    [.10] columns use [max_solutions = 10]). *)

val count : ?max_solutions:int -> problem -> int

type check_result =
  [ `Holds_in_all  (** every reconstruction satisfies the property *)
  | `Violated_in_all  (** no reconstruction satisfies it *)
  | `Mixed  (** some do, some do not — the log cannot decide *)
  | `Vacuous  (** no reconstruction exists at all *)
  | `Unknown ]

val check : ?conflict_budget:int -> problem -> Property.t -> check_result
(** Decide a suspected property against the log entry with two SAT
    queries (§3.3: "often we only want to know whether there is a trace
    that satisfies or breaks a certain temporal property"). *)

val pp_check_result : Format.formatter -> check_result -> unit
