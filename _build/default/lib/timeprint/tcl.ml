type t =
  | Separation of { min : int option; max : int option }
  | Count_in of { lo : int; hi : int; min : int option; max : int option }
  | Periodic of { offset : int; period : int; jitter : int }
  | Within of (int * int) list
  | All of t list

let separation ?min ?max () = Separation { min; max }
let count_in ~lo ~hi ?min ?max () = Count_in { lo; hi; min; max }
let periodic ?(offset = 0) ?(jitter = 0) ~period () =
  Periodic { offset; period; jitter }

let rec eval ~m c s =
  match c with
  | Separation { min; max } ->
      let changes = Signal.changes s in
      let min_ok =
        match min with
        | None -> true
        | Some n ->
            let rec go = function
              | i :: (j :: _ as rest) -> j - i - 1 >= n && go rest
              | _ -> true
            in
            go changes
      in
      let max_ok =
        match max with
        | None -> true
        | Some n ->
            ignore m;
            List.for_all
              (fun i ->
                List.exists (fun j -> j > i && j <= i + n) changes
                || not (List.exists (fun j -> j > i + n) changes))
              changes
      in
      min_ok && max_ok
  | Count_in { lo; hi; min; max } ->
      let n =
        List.length (List.filter (fun i -> i >= lo && i <= hi) (Signal.changes s))
      in
      (match min with None -> true | Some v -> n >= v)
      && (match max with None -> true | Some v -> n <= v)
  | Periodic { offset; period; jitter } ->
      List.for_all Fun.id
        (List.mapi
           (fun i c -> abs (c - (offset + (i * period))) <= jitter)
           (Signal.changes s))
  | Within windows ->
      List.for_all
        (fun i -> List.exists (fun (lo, hi) -> i >= lo && i <= hi) windows)
        (Signal.changes s)
  | All cs -> List.for_all (fun c -> eval ~m c s) cs

let rec compile ~m ~k c =
  match c with
  | Separation { min; max } ->
      Property.And
        (List.concat
           [
             (match min with Some n -> [ Property.Min_separation n ] | None -> []);
             (match max with Some n -> [ Property.Max_separation n ] | None -> []);
           ])
  | Count_in { lo; hi; min; max } ->
      Property.And
        (List.concat
           [
             (match min with
             | Some n -> [ Property.At_least_in { lo; hi; n } ]
             | None -> []);
             (match max with
             | Some n -> [ Property.At_most_in { lo; hi; n } ]
             | None -> []);
           ])
  | Periodic { offset; period; jitter } ->
      if 2 * jitter >= period then
        invalid_arg "Tcl.compile: Periodic requires 2*jitter < period";
      let window i =
        (max 0 (offset + (i * period) - jitter), offset + (i * period) + jitter)
      in
      let windows = List.init k window in
      Property.And
        (Property.Allowed windows
        :: List.map
             (fun (lo, hi) -> Property.At_least_in { lo; hi; n = 1 })
             windows)
  | Within windows -> Property.Allowed windows
  | All cs -> Property.And (List.map (compile ~m ~k) cs)

let rec pp ppf = function
  | Separation { min; max } ->
      Format.fprintf ppf "separation(min=%s,max=%s)"
        (match min with Some n -> string_of_int n | None -> "_")
        (match max with Some n -> string_of_int n | None -> "_")
  | Count_in { lo; hi; min; max } ->
      Format.fprintf ppf "count[%d..%d] in [%s,%s]" lo hi
        (match min with Some n -> string_of_int n | None -> "0")
        (match max with Some n -> string_of_int n | None -> "inf")
  | Periodic { offset; period; jitter } ->
      Format.fprintf ppf "periodic(offset=%d,period=%d,jitter=%d)" offset period
        jitter
  | Within ws ->
      Format.fprintf ppf "within(%s)"
        (String.concat ","
           (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) ws))
  | All cs ->
      Format.fprintf ppf "all(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
        cs
