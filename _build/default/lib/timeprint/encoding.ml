open Tp_bitvec

type scheme =
  | One_hot
  | Random_constrained of { seed : int }
  | Incremental
  | Bch
  | Custom

type t = { scheme : scheme; m : int; b : int; depth : int; ts : Bitvec.t array }

let scheme e = e.scheme
let m e = e.m
let b e = e.b
let depth e = e.depth

let timestamp e i =
  if i < 0 || i >= e.m then invalid_arg "Encoding.timestamp: cycle out of range";
  e.ts.(i)

let timestamps e = Array.map Bitvec.copy e.ts
let matrix e = F2_matrix.of_columns ~rows:e.b e.ts

let min_b ~m =
  let rec go b = if 1 lsl b >= m then b else go (b + 1) in
  go 1

let one_hot ~m =
  if m <= 0 then invalid_arg "Encoding.one_hot";
  {
    scheme = One_hot;
    m;
    b = m;
    depth = m;
    ts = Array.init m (fun i -> Bitvec.of_indices ~width:m [ i ]);
  }

(* Incremental LI-d maintenance.

   Invariant: the chosen set S is LI-d. A candidate v keeps the
   invariant iff no dependent subset of size <= d contains v, i.e.
   v is not 0, not in S, not a XOR of 2 elements of S, … not a XOR of
   (d-1) elements of S. We keep hash sets of all XORs of exactly
   j elements for j <= ceil((d-1)/2) and meet-in-the-middle for the
   larger combination sizes. For the default d = 4 this means: singles
   and pairs are stored; triples are checked as single ⊕ pair. *)

module H = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

type li_state = {
  d : int;
  singles : unit H.t;
  pairs : unit H.t; (* used when d >= 3 *)
  mutable members : Bitvec.t list;
}

let li_create d =
  { d; singles = H.create 64; pairs = H.create 1024; members = [] }

let li_ok st v =
  (not (Bitvec.is_zero v))
  && (st.d < 2 || not (H.mem st.singles v))
  && (st.d < 3 || not (H.mem st.pairs v))
  && (st.d < 4
     || not (List.exists (fun a -> H.mem st.pairs (Bitvec.logxor v a)) st.members))
  && (st.d < 5
     ||
     (* depth 5: v must not be a XOR of 4 members = pair ⊕ pair *)
     not
       (H.fold
          (fun p () acc -> acc || H.mem st.pairs (Bitvec.logxor v p))
          st.pairs false))

let li_add st v =
  List.iter (fun a -> H.replace st.pairs (Bitvec.logxor v a) ()) st.members;
  H.replace st.singles v ();
  st.members <- v :: st.members

let generate ~scheme ~m ~b ~depth ~next ~budget =
  let st = li_create depth in
  let ts = Array.make m (Bitvec.create b) in
  let attempts = ref 0 in
  let i = ref 0 in
  while !i < m do
    if !attempts > budget then
      failwith
        (Printf.sprintf
           "Encoding: could not fit %d LI-%d timestamps in %d bits" m depth b);
    incr attempts;
    let v = next () in
    if li_ok st v then begin
      li_add st v;
      ts.(!i) <- v;
      incr i
    end
  done;
  { scheme; m; b; depth; ts }

let random_constrained ?(depth = 4) ?(seed = 0x7155) ~m ~b () =
  if m <= 0 || b <= 0 then invalid_arg "Encoding.random_constrained";
  let rng = Random.State.make [| seed; m; b; depth |] in
  generate
    ~scheme:(Random_constrained { seed })
    ~m ~b ~depth
    ~next:(fun () -> Bitvec.random rng b)
    ~budget:(max 100_000 (200 * m))

let incremental ?(depth = 4) ~m ~b () =
  if m <= 0 || b <= 0 then invalid_arg "Encoding.incremental";
  let counter = ref (Bitvec.create b) in
  let wrapped = ref false in
  generate ~scheme:Incremental ~m ~b ~depth
    ~next:(fun () ->
      Bitvec.succ_in_place !counter;
      if Bitvec.is_zero !counter then
        if !wrapped then failwith "Encoding.incremental: space exhausted"
        else begin
          wrapped := true;
          Bitvec.succ_in_place !counter
        end;
      Bitvec.copy !counter)
    ~budget:(if b < 62 then (1 lsl b) + m else max_int)

let auto gen ~m ~depth =
  let floor_b = min_b ~m in
  let rec go b =
    if b > 4 * (floor_b + depth) then
      failwith "Encoding: auto width search failed"
    else
      match gen ~b with
      | e -> e
      | exception Failure _ -> go (b + 1)
  in
  go floor_b

let random_constrained_auto ?(depth = 4) ?seed ~m () =
  auto ~m ~depth (fun ~b -> random_constrained ~depth ?seed ~m ~b ())

let incremental_auto ?(depth = 4) ~m () =
  auto ~m ~depth (fun ~b -> incremental ~depth ~m ~b ())

(* GF(2^q) arithmetic for the BCH construction: elements are q-bit
   polynomials; multiplication reduces by a primitive polynomial. *)

let primitive_polynomials =
  (* index q: a primitive polynomial of degree q, bit q set *)
  [| 0; 0x3; 0x7; 0xB; 0x13; 0x25; 0x43; 0x89; 0x11D; 0x211; 0x409; 0x805; 0x1053 |]

let gf_mul ~q ~poly a b =
  let r = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then r := !r lxor !a;
    b := !b lsr 1;
    a := !a lsl 1;
    if !a land (1 lsl q) <> 0 then a := !a lxor poly
  done;
  !r

let bch ~m =
  if m <= 0 then invalid_arg "Encoding.bch";
  let rec find_q q = if (1 lsl q) - 1 >= m then q else find_q (q + 1) in
  let q = find_q 2 in
  if q >= Array.length primitive_polynomials then
    invalid_arg "Encoding.bch: m too large (q > 12)";
  let poly = primitive_polynomials.(q) in
  let b = 2 * q in
  (* column for cycle i: (x, x^3) with x = alpha^i, alpha = the root
     represented by polynomial "x" = 2 *)
  let ts = Array.make m (Bitvec.create b) in
  let x = ref 1 in
  for i = 0 to m - 1 do
    let x3 = gf_mul ~q ~poly (gf_mul ~q ~poly !x !x) !x in
    let v = Bitvec.create b in
    for bit = 0 to q - 1 do
      if (!x lsr bit) land 1 = 1 then Bitvec.set v bit true;
      if (x3 lsr bit) land 1 = 1 then Bitvec.set v (q + bit) true
    done;
    ts.(i) <- v;
    x := gf_mul ~q ~poly !x 2
  done;
  { scheme = Bch; m; b; depth = 4; ts }

let custom ?(depth = 1) ts =
  let m = Array.length ts in
  if m = 0 then invalid_arg "Encoding.custom: no timestamps";
  let b = Bitvec.width ts.(0) in
  Array.iter
    (fun v ->
      if Bitvec.width v <> b then invalid_arg "Encoding.custom: ragged widths";
      if Bitvec.is_zero v then invalid_arg "Encoding.custom: zero timestamp")
    ts;
  let seen = H.create m in
  Array.iter
    (fun v ->
      if H.mem seen v then invalid_arg "Encoding.custom: duplicate timestamp";
      H.replace seen v ())
    ts;
  { scheme = Custom; m; b; depth; ts = Array.map Bitvec.copy ts }

let verify_li e ~upto =
  (* check every subset of size <= upto for linear independence *)
  let rec subsets n start acc =
    if n = 0 then [ acc ]
    else if start >= e.m then []
    else
      subsets (n - 1) (start + 1) (e.ts.(start) :: acc)
      @ subsets n (start + 1) acc
  in
  let rec sizes n = if n = 0 then true else
    List.for_all F2_matrix.independent (subsets n 0 []) && sizes (n - 1)
  in
  sizes (min upto e.m)

let pp ppf e =
  let name =
    match e.scheme with
    | One_hot -> "one-hot"
    | Random_constrained { seed } -> Printf.sprintf "random-constrained(seed=%d)" seed
    | Incremental -> "incremental"
    | Bch -> "bch"
    | Custom -> "custom"
  in
  Format.fprintf ppf "%s encoding: m=%d b=%d LI-%d" name e.m e.b e.depth
