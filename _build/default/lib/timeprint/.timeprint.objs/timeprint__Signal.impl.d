lib/timeprint/signal.ml: Array Bitvec Format Fun List Random String Tp_bitvec
