lib/timeprint/logger.mli: Encoding Log_entry Signal
