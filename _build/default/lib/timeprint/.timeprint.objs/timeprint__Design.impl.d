lib/timeprint/design.ml: Encoding
