lib/timeprint/linear_reconstruct.mli: Encoding Log_entry Property Signal
