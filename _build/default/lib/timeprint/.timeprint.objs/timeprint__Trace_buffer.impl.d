lib/timeprint/trace_buffer.ml: List Signal
