lib/timeprint/combinatorial_reconstruct.mli: Encoding Log_entry Property Signal
