lib/timeprint/signal.mli: Format Random Tp_bitvec
