lib/timeprint/galois.mli: Encoding Log_entry Signal
