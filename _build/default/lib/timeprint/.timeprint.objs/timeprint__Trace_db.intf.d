lib/timeprint/trace_db.mli: Encoding Log_entry
