lib/timeprint/reconstruct.ml: Allsat Array Bitvec Cardinality Cnf Drat Encoding Format Fun Hashtbl List Lit Log_entry Property Signal Solver Tp_bitvec Tp_sat
