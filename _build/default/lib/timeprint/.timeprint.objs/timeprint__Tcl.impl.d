lib/timeprint/tcl.ml: Format Fun List Printf Property Signal String
