lib/timeprint/log_entry.mli: Format Tp_bitvec
