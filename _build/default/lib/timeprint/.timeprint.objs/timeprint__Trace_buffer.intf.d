lib/timeprint/trace_buffer.mli: Signal
