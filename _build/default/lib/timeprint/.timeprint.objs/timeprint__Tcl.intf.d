lib/timeprint/tcl.mli: Format Property Signal
