lib/timeprint/encoding.mli: Format Tp_bitvec
