lib/timeprint/property.ml: Array Cardinality Cnf Format Fun Int List Lit Printf Signal String Tp_sat Tseitin
