lib/timeprint/design.mli: Encoding
