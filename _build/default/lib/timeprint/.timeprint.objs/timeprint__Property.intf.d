lib/timeprint/property.mli: Format Signal Tp_sat
