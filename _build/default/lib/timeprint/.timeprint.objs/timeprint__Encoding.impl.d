lib/timeprint/encoding.ml: Array Bitvec F2_matrix Format Hashtbl List Printf Random Tp_bitvec
