lib/timeprint/reconstruct.mli: Encoding Format Log_entry Property Signal Tp_sat
