lib/timeprint/galois.ml: Linear_reconstruct List Log_entry Logger Signal
