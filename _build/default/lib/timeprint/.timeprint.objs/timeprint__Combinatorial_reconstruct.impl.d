lib/timeprint/combinatorial_reconstruct.ml: Bitvec Encoding Hashtbl List Log_entry Property Signal Tp_bitvec
