lib/timeprint/linear_reconstruct.ml: Encoding F2_matrix List Log_entry Property Signal Tp_bitvec
