lib/timeprint/trace_db.ml: Array Design Encoding Float Log_entry Tp_bitvec
