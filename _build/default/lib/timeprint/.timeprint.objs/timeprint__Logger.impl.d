lib/timeprint/logger.ml: Array Bitvec Encoding List Log_entry Signal Tp_bitvec
