lib/timeprint/log_entry.ml: Bitvec Format Int Tp_bitvec
