(** Conventional precise-timestamp trace buffer: the baseline
    timeprints replace.

    The development-phase approach (§1, §3, [23–25]): every change is
    logged as a [⌈log₂ m⌉]-bit cycle offset into an on-chip buffer of
    fixed capacity. Logging is exact while the buffer lasts, but cost
    is activity-dependent ([k·⌈log₂ m⌉] bits per trace-cycle) and the
    buffer overflows on bursts — after which cycles are simply not
    captured. {!coverage} and {!Trace_db.bits_stored} make the §1
    comparison (gigabytes/s vs ~bits/trace-cycle) executable, see the
    bench [baseline] section. *)

type t

val create : capacity_bits:int -> m:int -> t
(** Raises [Invalid_argument] when [capacity_bits <= 0] or [m <= 1]. *)

val m : t -> int
val capacity_bits : t -> int
val bits_per_change : t -> int
(** [⌈log₂ m⌉]. *)

val record_trace_cycle : t -> Signal.t -> bool
(** Log one trace-cycle's changes. Returns [true] when everything fit;
    [false] when the buffer overflowed — the trailing changes of this
    trace-cycle (and everything after) are lost. *)

val used_bits : t -> int
val overflowed : t -> bool

val captured : t -> (int * int list) list
(** Fully captured trace-cycles as [(index, changes)], oldest first.
    A trace-cycle that overflowed mid-way is not included. *)

val coverage : t -> float
(** Fraction of offered trace-cycles fully captured, in [0, 1]. *)
