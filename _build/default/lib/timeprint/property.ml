open Tp_sat

type t =
  | P2
  | Pulse_pairs
  | Deadline of { count : int; before : int }
  | Window of { lo : int; hi : int }
  | Change_at of int
  | No_change_at of int
  | Pattern_at of { pattern : Signal.t; lo : int; hi : int }
  | Min_separation of int
  | Max_separation of int
  | At_least_in of { lo : int; hi : int; n : int }
  | At_most_in of { lo : int; hi : int; n : int }
  | Allowed of (int * int) list
  | Delayed_once of Signal.t
  | Exact of Signal.t
  | Not of t
  | And of t list
  | Or of t list

let p2 = P2
let pulse_pairs = Pulse_pairs
let deadline ~count ~before = Deadline { count; before }
let window ~lo ~hi = Window { lo; hi }
let delayed_once s = Delayed_once s

(* ------------------------------------------------------------------ *)
(* Reference semantics                                                 *)

let count_changes_before s before =
  List.length (List.filter (fun i -> i < before) (Signal.changes s))

(* greedy pairing: the first change must pair with its successor *)
let rec pulses_ok s i =
  let m = Signal.length s in
  if i >= m then true
  else if not (Signal.change_at s i) then pulses_ok s (i + 1)
  else i + 1 < m && Signal.change_at s (i + 1) && pulses_ok s (i + 2)

let matches_at s pattern c =
  let lp = Signal.length pattern in
  c + lp <= Signal.length s
  &&
  let rec go j =
    j >= lp || (Signal.change_at s (c + j) = Signal.change_at pattern j && go (j + 1))
  in
  go 0

let delayed_candidates ref_signal =
  let m = Signal.length ref_signal in
  List.filter
    (fun i -> i + 1 < m && not (Signal.change_at ref_signal (i + 1)))
    (Signal.changes ref_signal)

let rec eval prop s =
  let m = Signal.length s in
  match prop with
  | P2 ->
      let rec go i =
        i + 1 < m && ((Signal.change_at s i && Signal.change_at s (i + 1)) || go (i + 1))
      in
      go 0
  | Pulse_pairs -> pulses_ok s 0
  | Deadline { count; before } -> count_changes_before s before >= count
  | Window { lo; hi } ->
      List.for_all (fun i -> i >= lo && i <= hi) (Signal.changes s)
  | Change_at i -> i >= 0 && i < m && Signal.change_at s i
  | No_change_at i -> not (i >= 0 && i < m && Signal.change_at s i)
  | Pattern_at { pattern; lo; hi } ->
      let rec go c = c <= hi && (matches_at s pattern c || go (c + 1)) in
      go (max 0 lo)
  | Min_separation n ->
      let rec ok = function
        | i :: (j :: _ as rest) -> j - i - 1 >= n && ok rest
        | _ -> true
      in
      ok (Signal.changes s)
  | Max_separation n ->
      (* violation: a change, then n quiet cycles, then some later
         change — the final change is exempt (its successor belongs to
         the next trace-cycle) *)
      let changes = Signal.changes s in
      List.for_all
        (fun i ->
          List.exists (fun j -> j > i && j <= i + n) changes
          || not (List.exists (fun j -> j > i + n) changes))
        changes
  | At_least_in { lo; hi; n } ->
      List.length (List.filter (fun i -> i >= lo && i <= hi) (Signal.changes s))
      >= n
  | At_most_in { lo; hi; n } ->
      List.length (List.filter (fun i -> i >= lo && i <= hi) (Signal.changes s))
      <= n
  | Allowed windows ->
      List.for_all
        (fun i -> List.exists (fun (lo, hi) -> i >= lo && i <= hi) windows)
        (Signal.changes s)
  | Delayed_once ref_signal ->
      Signal.length ref_signal = m
      && List.exists
           (fun i -> Signal.equal s (Signal.delay_change ref_signal ~at:i))
           (delayed_candidates ref_signal)
  | Exact s' -> Signal.equal s s'
  | Not p -> not (eval p s)
  | And ps -> List.for_all (fun p -> eval p s) ps
  | Or ps -> List.exists (fun p -> eval p s) ps

(* ------------------------------------------------------------------ *)
(* SAT encoding                                                        *)
(*
   Every leaf is encoded in both polarities under an optional guard
   literal g: emitted clauses carry ¬g, so the constraint binds exactly
   in models where g is true. Disjunction introduces one fresh guard
   per disjunct; negation is pushed to the leaves. The leaf encodings
   are exact under an asserted guard: when g holds, the auxiliary
   variables can be completed iff the property holds of the x-variables
   — so enumeration projected onto the x-variables is unaffected. *)

type ctx = {
  cnf : Cnf.t;
  m : int;
  xvar : int -> int;
  guard : Lit.t option;
}

let add ctx cl =
  Cnf.add_clause ctx.cnf
    (match ctx.guard with Some g -> Lit.negate g :: cl | None -> cl)

let x ctx i = Lit.pos (ctx.xvar i)
let nx ctx i = Lit.neg_of (ctx.xvar i)

(* literal asserting x_i = value *)
let xeq ctx i value = if value then x ctx i else nx ctx i

(* A fresh literal equivalent (unguarded, definitional) to a formula. *)
let define ctx f = Tseitin.to_lit ctx.cnf f

(* Deterministic pair-start chain for Pulse_pairs:
   p_i <-> x_i ∧ ¬p_{i-1}  (p_{-1} = false).
   The signal is a disjoint union of adjacent change pairs iff
   ¬p_{m-1} ∧ ∀i<m-1. p_i -> x_{i+1}. *)
let pulse_violation_lit ctx =
  let open Tseitin in
  let m = ctx.m in
  let p = Array.make m (Lit.pos 0) in
  for i = 0 to m - 1 do
    let def =
      if i = 0 then Var (ctx.xvar 0)
      else And [ Var (ctx.xvar i); Not (Var (Lit.var p.(i - 1))) ]
    in
    (* all p definitions are unguarded: they are total functions of x *)
    p.(i) <- define ctx def
  done;
  let violations =
    Var (Lit.var p.(m - 1))
    :: List.init (m - 1) (fun i ->
           And [ Var (Lit.var p.(i)); Not (Var (ctx.xvar (i + 1))) ])
  in
  define ctx (Or violations)

let guard_of_cardinality ctx = ctx.guard

let rec encode ctx ~pos prop =
  let m = ctx.m in
  match prop with
  | P2 ->
      let open Tseitin in
      let l =
        define ctx
          (Or
             (List.init (max 0 (m - 1)) (fun i ->
                  And [ Var (ctx.xvar i); Var (ctx.xvar (i + 1)) ])))
      in
      add ctx [ (if pos then l else Lit.negate l) ]
  | Pulse_pairs ->
      let v = pulse_violation_lit ctx in
      add ctx [ (if pos then Lit.negate v else v) ]
  | Deadline { count; before } ->
      if count <= 0 then begin
        (* trivially true: nothing to assert; its negation is false *)
        if not pos then add ctx []
      end
      else begin
        let before = max 0 (min before m) in
        let lits = List.init before (fun i -> x ctx i) in
        if pos then
          Cardinality.at_least ?guard:(guard_of_cardinality ctx) ctx.cnf lits count
        else
          Cardinality.at_most ?guard:(guard_of_cardinality ctx) ctx.cnf lits (count - 1)
      end
  | Window { lo; hi } ->
      let outside = List.filter (fun i -> i < lo || i > hi) (List.init m Fun.id) in
      if pos then List.iter (fun i -> add ctx [ nx ctx i ]) outside
      else if outside = [] then add ctx [] (* negation is unsatisfiable *)
      else add ctx (List.map (x ctx) outside)
  | Change_at i ->
      if i < 0 || i >= m then (if pos then add ctx [])
      else add ctx [ (if pos then x ctx i else nx ctx i) ]
  | No_change_at i -> encode ctx ~pos:(not pos) (Change_at i)
  | Exact s ->
      if Signal.length s <> m then (if pos then add ctx [])
      else if pos then
        for i = 0 to m - 1 do
          add ctx [ xeq ctx i (Signal.change_at s i) ]
        done
      else
        add ctx (List.init m (fun i -> xeq ctx i (not (Signal.change_at s i))))
  | Pattern_at { pattern; lo; hi } ->
      let lp = Signal.length pattern in
      let candidates =
        List.filter (fun c -> c >= 0 && c + lp <= m) (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))
      in
      if pos then begin
        match candidates with
        | [] -> add ctx []
        | _ ->
            let sel = List.map (fun c -> (c, Cnf.new_var ctx.cnf)) candidates in
            add ctx (List.map (fun (_, v) -> Lit.pos v) sel);
            List.iter
              (fun (c, v) ->
                for j = 0 to lp - 1 do
                  add ctx [ Lit.neg_of v; xeq ctx (c + j) (Signal.change_at pattern j) ]
                done)
              sel
      end
      else
        (* no candidate position may match *)
        List.iter
          (fun c ->
            add ctx
              (List.init lp (fun j -> xeq ctx (c + j) (not (Signal.change_at pattern j)))))
          candidates
  | Min_separation n ->
      if pos then
        (* no two changes within n cycles of each other *)
        for i = 0 to m - 1 do
          for j = i + 1 to min (m - 1) (i + n) do
            add ctx [ nx ctx i; nx ctx j ]
          done
        done
      else begin
        (* some pair of changes too close together *)
        let open Tseitin in
        let close_pairs = ref [] in
        for i = 0 to m - 1 do
          for j = i + 1 to min (m - 1) (i + n) do
            close_pairs := And [ Var (ctx.xvar i); Var (ctx.xvar j) ] :: !close_pairs
          done
        done;
        let l = define ctx (Or !close_pairs) in
        add ctx [ l ]
      end
  | Max_separation n ->
      (* suffix chain t_j = "some change at cycle >= j" (deterministic
         auxiliary, so both polarities stay exact) *)
      let open Tseitin in
      let suffix = Array.make (m + 1) (Lit.pos 0) in
      let false_var = Cnf.new_var ctx.cnf in
      Cnf.add_clause ctx.cnf [ Lit.neg_of false_var ];
      suffix.(m) <- Lit.pos false_var;
      for j = m - 1 downto 0 do
        suffix.(j) <-
          define ctx (Or [ Var (ctx.xvar j); Var (Lit.var suffix.(j + 1)) ])
      done;
      if pos then
        (* no change may be followed by n quiet cycles and then more
           activity *)
        for i = 0 to m - 1 do
          if i + n + 1 <= m then
            add ctx
              ((nx ctx i :: List.init (min n (m - 1 - i)) (fun d -> x ctx (i + 1 + d)))
              @ [ Lit.negate suffix.(min m (i + n + 1)) ])
        done
      else begin
        let viols = ref [] in
        for i = 0 to m - 1 do
          if i + n + 1 <= m then
            viols :=
              And
                ((Var (ctx.xvar i)
                 :: List.init (min n (m - 1 - i)) (fun d ->
                        Not (Var (ctx.xvar (i + 1 + d)))))
                @ [ Var (Lit.var suffix.(min m (i + n + 1))) ])
              :: !viols
        done;
        let l = define ctx (Or !viols) in
        add ctx [ l ]
      end
  | At_least_in { lo; hi; n } ->
      if n <= 0 then begin
        if not pos then add ctx []
      end
      else begin
        let lo = max 0 lo and hi = min (m - 1) hi in
        let lits = List.init (max 0 (hi - lo + 1)) (fun d -> x ctx (lo + d)) in
        if pos then
          Cardinality.at_least ?guard:(guard_of_cardinality ctx) ctx.cnf lits n
        else Cardinality.at_most ?guard:(guard_of_cardinality ctx) ctx.cnf lits (n - 1)
      end
  | At_most_in { lo; hi; n } ->
      encode ctx ~pos:(not pos) (At_least_in { lo; hi; n = n + 1 })
  | Allowed windows ->
      let allowed i = List.exists (fun (lo, hi) -> i >= lo && i <= hi) windows in
      let outside = List.filter (fun i -> not (allowed i)) (List.init m Fun.id) in
      if pos then List.iter (fun i -> add ctx [ nx ctx i ]) outside
      else if outside = [] then add ctx []
      else add ctx (List.map (x ctx) outside)
  | Delayed_once ref_signal ->
      if Signal.length ref_signal <> m then (if pos then add ctx [])
      else begin
        let candidates = delayed_candidates ref_signal in
        let diff_positions =
          List.sort_uniq Int.compare
            (List.concat_map (fun i -> [ i; i + 1 ]) candidates)
        in
        if pos then begin
          match candidates with
          | [] -> add ctx []
          | _ ->
              (* off-diff positions agree with the reference outright *)
              for j = 0 to m - 1 do
                if not (List.mem j diff_positions) then
                  add ctx [ xeq ctx j (Signal.change_at ref_signal j) ]
              done;
              let sel = List.map (fun c -> (c, Cnf.new_var ctx.cnf)) candidates in
              add ctx (List.map (fun (_, v) -> Lit.pos v) sel);
              List.iter
                (fun (c, v) ->
                  let expected = Signal.delay_change ref_signal ~at:c in
                  List.iter
                    (fun j ->
                      add ctx [ Lit.neg_of v; xeq ctx j (Signal.change_at expected j) ])
                    diff_positions)
                sel
        end
        else
          List.iter
            (fun c ->
              let expected = Signal.delay_change ref_signal ~at:c in
              add ctx
                (List.init m (fun j -> xeq ctx j (not (Signal.change_at expected j)))))
            candidates
      end
  | Not p -> encode ctx ~pos:(not pos) p
  | And ps -> if pos then List.iter (encode ctx ~pos) ps else encode_disj ctx ~pos:false ps
  | Or ps -> if pos then encode_disj ctx ~pos:true ps else List.iter (encode ctx ~pos) ps

and encode_disj ctx ~pos ps =
  (* assert the disjunction of [ps] (polarity [pos] applied to each) *)
  match ps with
  | [] -> add ctx [] (* empty disjunction is false *)
  | [ p ] -> encode ctx ~pos p
  | _ ->
      let guards =
        List.map
          (fun p ->
            let g = Lit.pos (Cnf.new_var ctx.cnf) in
            encode { ctx with guard = Some g } ~pos p;
            g)
          ps
      in
      add ctx guards

let assert_holds ?guard cnf ~m ~xvar prop =
  encode { cnf; m; xvar; guard } ~pos:true prop

let assert_violated ?guard cnf ~m ~xvar prop =
  encode { cnf; m; xvar; guard } ~pos:false prop

let rec pp ppf = function
  | P2 -> Format.pp_print_string ppf "P2"
  | Pulse_pairs -> Format.pp_print_string ppf "pulse-pairs"
  | Deadline { count; before } -> Format.fprintf ppf "D(k=%d,D=%d)" count before
  | Window { lo; hi } -> Format.fprintf ppf "window[%d..%d]" lo hi
  | Change_at i -> Format.fprintf ppf "change@%d" i
  | No_change_at i -> Format.fprintf ppf "no-change@%d" i
  | Pattern_at { pattern; lo; hi } ->
      Format.fprintf ppf "pattern(%d changes)@[%d..%d]"
        (Signal.num_changes pattern) lo hi
  | Min_separation n -> Format.fprintf ppf "min-separation(%d)" n
  | Max_separation n -> Format.fprintf ppf "max-separation(%d)" n
  | At_least_in { lo; hi; n } -> Format.fprintf ppf ">=%d in [%d..%d]" n lo hi
  | At_most_in { lo; hi; n } -> Format.fprintf ppf "<=%d in [%d..%d]" n lo hi
  | Allowed ws ->
      Format.fprintf ppf "allowed(%s)"
        (String.concat ","
           (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) ws))
  | Delayed_once _ -> Format.pp_print_string ppf "delayed-once"
  | Exact _ -> Format.pp_print_string ppf "exact"
  | Not p -> Format.fprintf ppf "not(%a)" pp p
  | And ps ->
      Format.fprintf ppf "and(%a)" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp) ps
  | Or ps ->
      Format.fprintf ppf "or(%a)" (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp) ps
