open Tp_bitvec

type t = { tp : Bitvec.t; k : int }

let make ~tp ~k =
  if k < 0 then invalid_arg "Log_entry.make: negative k";
  { tp; k }

let tp e = e.tp
let k e = e.k
let equal a b = Bitvec.equal a.tp b.tp && a.k = b.k

let compare a b =
  let c = Bitvec.compare a.tp b.tp in
  if c <> 0 then c else Int.compare a.k b.k

let pp ppf e = Format.fprintf ppf "(TP=%a, k=%d)" Bitvec.pp e.tp e.k

let counter_bits ~m =
  let rec go b = if 1 lsl b >= m + 1 then b else go (b + 1) in
  go 1

let bits ~m e = Bitvec.width e.tp + counter_bits ~m

let serialize ~m e =
  let cb = counter_bits ~m in
  if e.k > (1 lsl cb) - 1 then invalid_arg "Log_entry.serialize: k too large";
  Bitvec.append e.tp (Bitvec.of_int ~width:cb e.k)

let deserialize ~m ~b v =
  let cb = counter_bits ~m in
  if Bitvec.width v <> b + cb then invalid_arg "Log_entry.deserialize: width";
  {
    tp = Bitvec.extract v ~pos:0 ~len:b;
    k = Bitvec.to_int (Bitvec.extract v ~pos:b ~len:cb);
  }
