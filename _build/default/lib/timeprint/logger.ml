open Tp_bitvec

let abstract enc s =
  if Signal.length s <> Encoding.m enc then
    invalid_arg "Logger.abstract: signal length <> encoding m";
  let tp = Bitvec.create (Encoding.b enc) in
  List.iter
    (fun i -> Bitvec.xor_in_place tp (Encoding.timestamp enc i))
    (Signal.changes s);
  Log_entry.make ~tp ~k:(Signal.num_changes s)

let abstract_run enc = List.map (abstract enc)

type t = {
  enc : Encoding.t;
  mutable cycle : int;
  mutable k : int;
  tp : Bitvec.t; (* running register, reset at trace-cycle boundary *)
  mutable prev_value : bool;
  mutable entries : Log_entry.t list; (* reversed *)
}

let create enc =
  {
    enc;
    cycle = 0;
    k = 0;
    tp = Bitvec.create (Encoding.b enc);
    prev_value = false;
    entries = [];
  }

let encoding t = t.enc
let cycle t = t.cycle
let completed t = List.rev t.entries

let step t ~change =
  if change then begin
    Bitvec.xor_in_place t.tp (Encoding.timestamp t.enc t.cycle);
    t.k <- t.k + 1
  end;
  t.cycle <- t.cycle + 1;
  if t.cycle = Encoding.m t.enc then begin
    let entry = Log_entry.make ~tp:(Bitvec.copy t.tp) ~k:t.k in
    t.entries <- entry :: t.entries;
    t.cycle <- 0;
    t.k <- 0;
    Bitvec.xor_in_place t.tp t.tp;
    Some entry
  end
  else None

let step_value t v =
  let change = v <> t.prev_value in
  t.prev_value <- v;
  step t ~change

let run_values enc ?(initial = false) values =
  let t = create enc in
  t.prev_value <- initial;
  Array.iter (fun v -> ignore (step_value t v)) values;
  completed t
