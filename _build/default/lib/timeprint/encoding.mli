(** Timestamp encodings: the injective map [TS : [1..m] → F₂ᵇ].

    The encoding fixes the trade-off at the heart of the method
    (§3.2, §4.3): linearly independent timestamps make reconstruction
    unique but force [b = m]; compressed timestamps shrink the log but
    multiply the preimage. The paper settles on {e linear independence
    up to depth d} (LI-d, default [d = 4]): every subset of at most [d]
    timestamps is linearly independent, so no [≤ d] changes can alias
    another [≤ d]-change signal.

    Two LI-d generators are compared in Table 2: random-constrained
    (§5.1.2, smaller [b], faster plain reconstruction) and incremental
    (start from the smallest vector and count upward, keeping vectors
    that preserve LI-d). One-hot is the exact-but-wide baseline. *)

type t

type scheme =
  | One_hot
  | Random_constrained of { seed : int }
  | Incremental  (** deterministic: smallest-first counting *)
  | Bch  (** double-error-correcting BCH parity-check columns *)
  | Custom  (** user-supplied timestamps, e.g. the Figure 4 table *)

val scheme : t -> scheme
val m : t -> int
(** Trace-cycle length. *)

val b : t -> int
(** Timestamp width in bits. *)

val depth : t -> int
(** The guaranteed linear-independence depth [d]. *)

val timestamp : t -> int -> Tp_bitvec.Bitvec.t
(** [timestamp e i] is [TS(i+1)], the encoded timestamp of cycle [i]
    ([0]-based). Raises [Invalid_argument] when out of range. *)

val timestamps : t -> Tp_bitvec.Bitvec.t array
(** All [m] timestamps, cycle order. *)

val matrix : t -> Tp_bitvec.F2_matrix.t
(** The [b × m] matrix [A = [TS(1) | … | TS(m)]] of §4.2. *)

val one_hot : m:int -> t
(** [b = m]; reconstruction is always unique. *)

val random_constrained : ?depth:int -> ?seed:int -> m:int -> b:int -> unit -> t
(** Draw timestamps uniformly, rejecting candidates that would break
    LI-[depth] (default 4). Raises [Failure] when [b] is too small to
    host [m] such vectors (detected by exhausting the retry budget). *)

val random_constrained_auto : ?depth:int -> ?seed:int -> m:int -> unit -> t
(** {!random_constrained} with the smallest width [b] found by starting
    at the information-theoretic floor and growing until generation
    succeeds — the "practical heuristic" of §4.3. *)

val incremental : ?depth:int -> m:int -> b:int -> unit -> t
(** Deterministic generator of §5.1.2: enumerate [1, 2, 3, …] and keep
    every vector that preserves LI-[depth]. Raises [Failure] when the
    [b]-bit space is exhausted before [m] vectors are found. *)

val incremental_auto : ?depth:int -> m:int -> unit -> t
(** {!incremental} at the smallest width the counting search succeeds
    at. *)

val bch : m:int -> t
(** The structured LI-4 encoding the paper's §4.3 leaves open: the
    parity-check columns [(x, x³)] of a double-error-correcting
    narrow-sense BCH code over GF(2^q), with [q = ⌈log₂(m+1)⌉] and
    [b = 2q]. Every 4-subset of columns is linearly independent by the
    BCH bound, at a width the random-constrained greedy provably cannot
    reach for large m (the triple-XOR set of [n] chosen vectors covers
    the [2^b] space once [C(n,3) ≳ 2^b]). Gives [b = 20] at [m = 512]
    and [b = 22] at [m = 1024] versus the paper's 22 and 24. Supported
    up to [q = 12] ([m ≤ 4095]). *)

val custom : ?depth:int -> Tp_bitvec.Bitvec.t array -> t
(** Encoding from explicit timestamps (cycle order). All vectors must
    share one width and be pairwise distinct and non-zero (injectivity);
    [depth] (default 1) is the caller-asserted LI depth — check it with
    {!verify_li} if it matters. *)

val min_b : m:int -> int
(** Information-theoretic floor [⌈log₂ m⌉] for injectivity. *)

val verify_li : t -> upto:int -> bool
(** Exhaustively check that every subset of size [<= upto] of the
    timestamps is linearly independent. Exponential in [upto]; used by
    tests with small [m]. *)

val pp : Format.formatter -> t -> unit
