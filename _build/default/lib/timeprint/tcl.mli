(** Timing constraints in the style of Lisper & Nordlander's Timing
    Constraint Logic (TCL), which §5.1.3 cites as the property language
    timeprints can model.

    A constraint speaks about the {e occurrence times} of the traced
    signal's changes within one trace-cycle. {!compile} lowers a
    constraint to a {!Property.t} for reconstruction pruning or
    checking; {!eval} is the independent reference semantics the
    compilation is tested against.

    [Periodic] is the one constraint whose natural reading is ordinal
    ("the i-th occurrence lies in the i-th window"), so its compilation
    needs the logged change count [k] — always available from the log
    entry under analysis. *)

type t =
  | Separation of { min : int option; max : int option }
      (** consecutive changes at least [min] and/or at most [max]
          cycles apart (gap measured in quiet cycles for [min], as
          cycle distance for [max]; a trailing change whose successor
          would fall beyond the trace-cycle is exempt from [max]) *)
  | Count_in of { lo : int; hi : int; min : int option; max : int option }
      (** between [min] and [max] changes inside cycles [lo..hi] *)
  | Periodic of { offset : int; period : int; jitter : int }
      (** the i-th change (0-based) occurs within
          [offset + i·period ± jitter]; requires [jitter < period/2]
          so the windows stay disjoint *)
  | Within of (int * int) list
      (** changes only inside the union of the windows *)
  | All of t list

val separation : ?min:int -> ?max:int -> unit -> t
val count_in : lo:int -> hi:int -> ?min:int -> ?max:int -> unit -> t
val periodic : ?offset:int -> ?jitter:int -> period:int -> unit -> t

val eval : m:int -> t -> Signal.t -> bool
(** Reference semantics. For [Periodic], every change must fall in its
    ordinal window. *)

val compile : m:int -> k:int -> t -> Property.t
(** Lower to a reconstruction property for a trace-cycle whose log
    entry recorded [k] changes. Sound and complete with respect to
    {!eval} on signals with exactly [k] changes (tested). Raises
    [Invalid_argument] on [Periodic] with [2·jitter >= period]. *)

val pp : Format.formatter -> t -> unit
