open Tp_bitvec

type t = Bitvec.t

let length = Bitvec.width
let create m = Bitvec.create m
let of_bitvec v = v
let to_bitvec v = Bitvec.copy v

let of_changes ~m cs =
  List.iter
    (fun c -> if c < 0 || c >= m then invalid_arg "Signal.of_changes: cycle out of range")
    cs;
  Bitvec.of_indices ~width:m cs

let changes = Bitvec.indices
let change_at = Bitvec.get
let num_changes = Bitvec.popcount
let equal = Bitvec.equal
let compare = Bitvec.compare

(* cycle 0 leftmost: the time axis of Figure 4 *)
let to_string s = String.init (Bitvec.width s) (fun i -> if Bitvec.get s i then '1' else '0')

let of_string str =
  let m = String.length str in
  if m = 0 then invalid_arg "Signal.of_string: empty";
  let s = Bitvec.create m in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> Bitvec.set s i true
      | '0' -> ()
      | _ -> invalid_arg "Signal.of_string: expected '0' or '1'")
    str;
  s

let pp ppf s = Format.pp_print_string ppf (to_string s)

let random st ~m ~k =
  if k < 0 || k > m then invalid_arg "Signal.random: k out of range";
  (* partial Fisher–Yates over cycle indices *)
  let idx = Array.init m Fun.id in
  for i = 0 to k - 1 do
    let j = i + Random.State.int st (m - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Bitvec.of_indices ~width:m (Array.to_list (Array.sub idx 0 k))

let of_values ~initial values =
  let m = Array.length values in
  if m = 0 then invalid_arg "Signal.of_values: empty";
  let s = Bitvec.create m in
  let prev = ref initial in
  Array.iteri
    (fun i v ->
      if v <> !prev then Bitvec.set s i true;
      prev := v)
    values;
  s

let delay_change s ~at =
  let m = Bitvec.width s in
  if at < 0 || at >= m - 1 then invalid_arg "Signal.delay_change: bad cycle";
  if not (Bitvec.get s at) then invalid_arg "Signal.delay_change: no change at cycle";
  if Bitvec.get s (at + 1) then
    invalid_arg "Signal.delay_change: next cycle already changes";
  let s' = Bitvec.copy s in
  Bitvec.set s' at false;
  Bitvec.set s' (at + 1) true;
  s'
