let dedup_entries es = List.sort_uniq Log_entry.compare es
let dedup_signals ss = List.sort_uniq Signal.compare ss

let abstract enc signals =
  dedup_entries (List.map (Logger.abstract enc) signals)

let concretize ?max_per_entry enc entries =
  dedup_signals
    (List.concat_map
       (fun e -> Linear_reconstruct.preimage ?max_solutions:max_per_entry enc e)
       entries)

let insertion_left enc signals =
  let closure = concretize enc (abstract enc signals) in
  List.for_all (fun s -> List.exists (Signal.equal s) closure) signals

let insertion_right enc entries =
  let entries = dedup_entries entries in
  let back = abstract enc (concretize enc entries) in
  List.length back = List.length entries
  && List.for_all2 (fun a b -> Log_entry.equal a b) back entries

let realizable enc entry = Linear_reconstruct.preimage ~max_solutions:1 enc entry <> []
