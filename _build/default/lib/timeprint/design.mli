(** Design-parameter arithmetic of §5.1.1 and §3.

    The logging bit-rate is [(b + ⌈log₂ m⌉)/m] bits per clock-cycle;
    Table 1's [R] column multiplies it by a 100 MHz clock. The naive
    cycle-accurate alternative logs [⌈log₂ m⌉] bits per change — linear
    in the activity [k] and bounded by the single-pin budget of [m]
    bits per trace-cycle ([m/⌈log₂ m⌉] changes at most, §3). *)

val counter_bits : m:int -> int
(** [⌈log₂ (m+1)⌉]: bits needed for the change counter [k ∈ 0..m]. *)

val bits_per_trace_cycle : Encoding.t -> int
(** Constant logging cost: [b + counter_bits]. *)

val log_rate_hz : Encoding.t -> clock_hz:float -> float
(** Sustained logging bit-rate for a signal clocked at [clock_hz]. *)

val naive_bits : m:int -> k:int -> int
(** Precise-timing logging cost for a trace-cycle with [k] changes:
    [k·⌈log₂ m⌉]. *)

val naive_max_changes : m:int -> int
(** Most changes a one-pin (m bits per trace-cycle) precise-timing
    logger can record: [⌊m/⌈log₂ m⌉⌋]. *)

val compression_ratio : Encoding.t -> k:int -> float
(** [naive_bits / bits_per_trace_cycle] at activity [k]. *)
