(** Change signals over one trace-cycle.

    Following §4 of the paper, a signal is a map
    [S : [1..m] → {0,1}] where [S(i) = 1] marks a {e change} of the
    traced on-chip signal in the [i]-th clock-cycle. We index cycles
    [0 .. m-1] and store the map as a width-[m] bitvector, which makes
    the signal literally the solution vector [x] of the reconstruction
    system [A·x = TP]. *)

type t
(** A change signal within a trace-cycle of length [width]. *)

val length : t -> int
(** The trace-cycle length [m]. *)

val create : int -> t
(** No changes. *)

val of_bitvec : Tp_bitvec.Bitvec.t -> t
val to_bitvec : t -> Tp_bitvec.Bitvec.t
(** The change vector [x ∈ F₂ᵐ]. *)

val of_changes : m:int -> int list -> t
(** Signal changing exactly at the given cycles. Raises
    [Invalid_argument] on out-of-range cycles. *)

val changes : t -> int list
(** Cycles with a change, increasing. *)

val change_at : t -> int -> bool
val num_changes : t -> int
(** The paper's counter [k]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Renders cycle-per-character, earliest cycle leftmost, e.g.
    ["0001100001100000"] for changes at cycles 3,4,9,10 of m = 16. *)

val to_string : t -> string
val of_string : string -> t
(** Inverse of {!to_string} (leftmost character = cycle 0). *)

val random : Random.State.t -> m:int -> k:int -> t
(** Uniform signal with exactly [k] changes among [m] cycles. *)

val of_values : initial:bool -> bool array -> t
(** Derive the change signal from a sampled value waveform: cycle [i]
    has a change iff [values.(i)] differs from the previous sample
    ([initial] before cycle 0). The array length is the trace-cycle
    length. *)

val delay_change : t -> at:int -> t
(** [delay_change s ~at] moves the change at cycle [at] one cycle
    later — the sporadic one-cycle delay of experiment §5.2.2. Raises
    [Invalid_argument] if there is no change at [at], if [at] is the
    last cycle, or if cycle [at+1] already changes. *)
