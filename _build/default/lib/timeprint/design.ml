let counter_bits ~m =
  let rec go b = if 1 lsl b >= m + 1 then b else go (b + 1) in
  go 1

let log2_ceil n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let bits_per_trace_cycle enc = Encoding.b enc + counter_bits ~m:(Encoding.m enc)

let log_rate_hz enc ~clock_hz =
  float_of_int (bits_per_trace_cycle enc) /. float_of_int (Encoding.m enc) *. clock_hz

let naive_bits ~m ~k = k * log2_ceil m

let naive_max_changes ~m = m / log2_ceil m

let compression_ratio enc ~k =
  float_of_int (naive_bits ~m:(Encoding.m enc) ~k)
  /. float_of_int (bits_per_trace_cycle enc)
