(** The central timeprint store of Figure 3.

    During deployment, log entries stream at a constant (tiny) rate to
    a database where they are "stored until they wear out": a bounded
    ring buffer holding the most recent [capacity] trace-cycles. At 34
    bits per entry (the §5.2.1 design point), hours of full-rate
    tracing fit in a few megabytes — {!bits_stored} makes the paper's
    storage argument concrete.

    Entries are addressed by their absolute trace-cycle index; asking
    for a worn-out (overwritten) or future index yields [None]. *)

type t

val create : capacity:int -> Encoding.t -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val encoding : t -> Encoding.t
val capacity : t -> int

val append : t -> Log_entry.t -> unit
(** Store the entry for the next trace-cycle index, evicting the oldest
    entry when full. Raises [Invalid_argument] on a timeprint width
    mismatch with the encoding. *)

val total : t -> int
(** Number of trace-cycles ever appended. *)

val oldest : t -> int
(** Smallest trace-cycle index still retrievable ([total - capacity]
    clamped at 0). When empty, equals {!total}. *)

val entry : t -> int -> Log_entry.t option
(** [entry db i] is trace-cycle [i]'s entry, unless worn out or not yet
    appended. *)

val window : t -> from_cycle:int -> to_cycle:int -> (int * Log_entry.t) list
(** Retrievable entries with indices in [from_cycle .. to_cycle]
    (inclusive), oldest first. *)

val entry_at_time : t -> clock_hz:float -> float -> (int * Log_entry.t) option
(** [entry_at_time db ~clock_hz t] finds the trace-cycle covering
    absolute time [t] seconds (trace-cycle 0 starting at time 0) — the
    §5.2.1 retrieval step "the timeprint corresponding to the
    trace-cycle which started at 2.253400 s". *)

val bits_stored : t -> int
(** Current storage footprint in bits:
    [min total capacity × (b + ⌈log₂(m+1)⌉)]. *)
