(** Log entries: the pair [(TP, k)] emitted once per trace-cycle.

    [TP ∈ F₂ᵇ] is the timeprint — the XOR of the timestamps of every
    cycle in which the traced signal changed — and [k] the exact number
    of changes. Per §3.1 the logging cost is a constant
    [b + ⌈log₂ m⌉] bits per trace-cycle regardless of activity. *)

type t = { tp : Tp_bitvec.Bitvec.t; k : int }

val make : tp:Tp_bitvec.Bitvec.t -> k:int -> t
(** Raises [Invalid_argument] when [k < 0]. *)

val tp : t -> Tp_bitvec.Bitvec.t
val k : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val bits : m:int -> t -> int
(** Serialized size in bits: [b + ⌈log₂ m⌉]. *)

val serialize : m:int -> t -> Tp_bitvec.Bitvec.t
(** Wire layout: timeprint in the low [b] bits, counter above. *)

val deserialize : m:int -> b:int -> Tp_bitvec.Bitvec.t -> t
(** Inverse of {!serialize}. Raises [Invalid_argument] on a width
    mismatch. *)
