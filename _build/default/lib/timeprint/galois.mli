(** The Galois insertion of §4.1 between signal sets and log-entry sets.

    [α] lifts the logging procedure [α̃] to sets of signals; [γ] maps a
    set of log entries to the union of their preimages. Lemma 1 states
    [F ⊆ γ(α(F))] and [V = α(γ(V))] — both are exercised as executable
    tests (property-based, exhaustive for small [m]).

    Set arguments and results are duplicate-free lists. *)

val abstract : Encoding.t -> Signal.t list -> Log_entry.t list
(** [α]: the set of log entries of the given signals. *)

val concretize :
  ?max_per_entry:int -> Encoding.t -> Log_entry.t list -> Signal.t list
(** [γ]: the union of the preimages (exact; exponential in the nullity
    of the encoding matrix — small [m] only). *)

val insertion_left : Encoding.t -> Signal.t list -> bool
(** [F ⊆ γ(α(F))] for the given [F]. *)

val insertion_right : Encoding.t -> Log_entry.t list -> bool
(** [V = α(γ(V))] for the given [V] — entries with empty preimage are
    required to be absent from [α(γ(V))], so feeding unrealizable
    entries makes this [false]; Lemma 1 quantifies over realizable
    entry sets [V ⊆ α(Sig)]. *)

val realizable : Encoding.t -> Log_entry.t -> bool
(** Whether the entry has at least one concretization. *)
