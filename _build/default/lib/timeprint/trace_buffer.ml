type t = {
  m : int;
  capacity_bits : int;
  bits_per_change : int;
  mutable used : int;
  mutable offered : int; (* trace-cycles presented *)
  mutable stored : (int * int list) list; (* reversed *)
  mutable overflow : bool;
}

let log2_ceil n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let create ~capacity_bits ~m =
  if capacity_bits <= 0 then invalid_arg "Trace_buffer.create: capacity";
  if m <= 1 then invalid_arg "Trace_buffer.create: m";
  {
    m;
    capacity_bits;
    bits_per_change = log2_ceil m;
    used = 0;
    offered = 0;
    stored = [];
    overflow = false;
  }

let m t = t.m
let capacity_bits t = t.capacity_bits
let bits_per_change t = t.bits_per_change

let record_trace_cycle t s =
  if Signal.length s <> t.m then
    invalid_arg "Trace_buffer.record_trace_cycle: length";
  let idx = t.offered in
  t.offered <- t.offered + 1;
  if t.overflow then false
  else begin
    let cost = Signal.num_changes s * t.bits_per_change in
    if t.used + cost <= t.capacity_bits then begin
      t.used <- t.used + cost;
      t.stored <- (idx, Signal.changes s) :: t.stored;
      true
    end
    else begin
      (* a partial trace-cycle is useless for cycle-accurate replay:
         count the bits as burned and latch the overflow *)
      t.used <- t.capacity_bits;
      t.overflow <- true;
      false
    end
  end

let used_bits t = t.used
let overflowed t = t.overflow
let captured t = List.rev t.stored

let coverage t =
  if t.offered = 0 then 1.0
  else float_of_int (List.length t.stored) /. float_of_int t.offered
