lib/vcd/vcd.mli: Timeprint
