lib/vcd/vcd.ml: Array Buffer Fun Hashtbl List Printf Seq String Timeprint
