type value = V0 | V1 | VX | VZ

type var = { id : string; name : string; width : int }

type t = {
  timescale_fs : int;
  vars : var list;
  events : (string, (int * value) list) Hashtbl.t; (* id -> reversed events *)
  end_time : int; (* largest #time marker in the dump *)
}

let timescale_fs w = w.timescale_fs
let vars w = w.vars

let find_var w name =
  match List.find_opt (fun v -> v.name = name) w.vars with
  | Some v -> Some v
  | None -> (
      (* fall back to the unqualified trailing component *)
      let matches =
        List.filter
          (fun v ->
            match String.rindex_opt v.name '.' with
            | Some i -> String.sub v.name (i + 1) (String.length v.name - i - 1) = name
            | None -> v.name = name)
          w.vars
      in
      match matches with [ v ] -> Some v | _ -> None)

let changes w ~id =
  match Hashtbl.find_opt w.events id with
  | Some evs -> List.rev evs
  | None ->
      if List.exists (fun v -> v.id = id) w.vars then []
      else raise Not_found

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let timescale_of_string s =
  (* e.g. "1ns", "10 ps", "100us" *)
  let s = String.concat "" (String.split_on_char ' ' (String.trim s)) in
  let num = String.to_seq s |> Seq.take_while (fun c -> c >= '0' && c <= '9')
            |> String.of_seq in
  let unit_str = String.sub s (String.length num) (String.length s - String.length num) in
  match (int_of_string_opt num, unit_str) with
  | Some n, "fs" -> Ok n
  | Some n, "ps" -> Ok (n * 1_000)
  | Some n, "ns" -> Ok (n * 1_000_000)
  | Some n, "us" -> Ok (n * 1_000_000_000)
  | Some n, "ms" -> Ok (n * 1_000_000_000_000)
  | Some n, "s" -> Ok (n * 1_000_000_000_000_000)
  | _ -> Error ("bad timescale: " ^ s)

let value_of_char = function
  | '0' -> Some V0
  | '1' -> Some V1
  | 'x' | 'X' -> Some VX
  | 'z' | 'Z' -> Some VZ
  | _ -> None

let parse text =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (( <> ) "")
  in
  let timescale = ref 1_000_000 (* default 1ns *) in
  let vars = ref [] in
  let events : (string, (int * value) list) Hashtbl.t = Hashtbl.create 16 in
  let scope = ref [] in
  let time = ref 0 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let record id v =
    Hashtbl.replace events id
      ((!time, v) :: (try Hashtbl.find events id with Not_found -> []))
  in
  let rec skip_to_end = function
    | "$end" :: rest -> rest
    | _ :: rest -> skip_to_end rest
    | [] -> []
  in
  let rec go = function
    | [] -> ()
    | "$timescale" :: rest ->
        let body, rest =
          let rec take acc = function
            | "$end" :: r -> (List.rev acc, r)
            | x :: r -> take (x :: acc) r
            | [] -> (List.rev acc, [])
          in
          take [] rest
        in
        (match timescale_of_string (String.concat "" body) with
        | Ok n -> timescale := n
        | Error e -> fail e);
        go rest
    | "$scope" :: _kind :: name :: "$end" :: rest ->
        scope := name :: !scope;
        go rest
    | "$upscope" :: "$end" :: rest ->
        (match !scope with [] -> () | _ :: up -> scope := up);
        go rest
    | "$var" :: _kind :: width :: id :: name :: rest ->
        let rest = skip_to_end rest (* swallow optional [msb:lsb] and $end *) in
        (match int_of_string_opt width with
        | Some w ->
            let qual =
              String.concat "." (List.rev (name :: !scope))
            in
            vars := { id; name = qual; width = w } :: !vars
        | None -> fail ("bad var width: " ^ width));
        go rest
    | ("$comment" | "$date" | "$version") :: rest ->
        (* free-text body up to $end *)
        go (skip_to_end rest)
    | ("$dumpvars" | "$dumpall" | "$dumpoff" | "$dumpon") :: rest ->
        (* these sections contain ordinary value changes; their closing
           $end is handled by the generic $end case *)
        go rest
    | "$end" :: rest -> go rest
    | "$enddefinitions" :: rest -> go (skip_to_end ("x" :: rest))
    | tok :: rest when tok.[0] = '#' -> (
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some t ->
            time := max t !time;
            go rest
        | None ->
            fail ("bad time: " ^ tok);
            go rest)
    | tok :: rest when tok.[0] = 'b' || tok.[0] = 'B' -> (
        (* vector change: "b1010 id" *)
        match rest with
        | id :: rest' ->
            let bits = String.sub tok 1 (String.length tok - 1) in
            let lsb = if bits = "" then 'x' else bits.[String.length bits - 1] in
            (match value_of_char lsb with
            | Some v -> record id v
            | None -> fail ("bad vector value: " ^ tok));
            go rest'
        | [] -> fail "truncated vector change")
    | tok :: rest -> (
        (* scalar change: value char immediately followed by the id *)
        match value_of_char tok.[0] with
        | Some v when String.length tok > 1 ->
            record (String.sub tok 1 (String.length tok - 1)) v;
            go rest
        | _ ->
            fail ("unrecognized token: " ^ tok);
            go rest)
  in
  go tokens;
  match !err with
  | Some e -> Error e
  | None ->
      Ok
        {
          timescale_fs = !timescale;
          vars = List.rev !vars;
          events;
          end_time = !time;
        }

let parse_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)

let sample w ~name ~clock_period ?offset ~samples () =
  let offset = match offset with Some o -> o | None -> clock_period in
  match find_var w name with
  | None -> Error ("no such variable: " ^ name)
  | Some v ->
      let evs = changes w ~id:v.id in
      let out = Array.make samples false in
      let rec go evs current i =
        if i < samples then begin
          let t = offset + (i * clock_period) in
          (* advance through events with time <= t *)
          let rec advance evs current =
            match evs with
            | (te, ve) :: rest when te <= t ->
                advance rest (match ve with V1 -> true | V0 | VX | VZ -> false)
            | _ -> (evs, current)
          in
          let evs, current = advance evs current in
          out.(i) <- current;
          go evs current (i + 1)
        end
      in
      go evs false 0;
      Ok out

let to_signal w ~name ~clock_period ?offset ~m () =
  let start = match offset with Some o -> o | None -> clock_period in
  match find_var w name with
  | None -> Error ("no such variable: " ^ name)
  | Some v ->
      let last = w.end_time in
      ignore v;
      let n_samples =
        if last < start then 0 else ((last - start) / clock_period) + 1
      in
      let n_cycles = n_samples / m in
      if n_cycles = 0 then Ok []
      else begin
        match sample w ~name ~clock_period ?offset ~samples:(n_cycles * m) () with
        | Error e -> Error e
        | Ok values ->
            let prev = ref false in
            Ok
              (List.init n_cycles (fun j ->
                   let chunk = Array.sub values (j * m) m in
                   let s = Timeprint.Signal.of_values ~initial:!prev chunk in
                   prev := chunk.(m - 1);
                   s))
      end

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let header ?(timescale_ns = 1) () =
  Printf.sprintf
    "$date\n  timeprints\n$end\n$version\n  timeprints vcd writer\n$end\n$timescale %dns $end\n"
    timescale_ns

let of_values ?timescale_ns ~name ~clock_period values =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ?timescale_ns ());
  Buffer.add_string buf
    (Printf.sprintf "$scope module top $end\n$var wire 1 ! %s $end\n$upscope $end\n$enddefinitions $end\n"
       name);
  Buffer.add_string buf "#0\n";
  let prev = ref None in
  Array.iteri
    (fun i v ->
      if !prev <> Some v then begin
        let t = (i + 1) * clock_period in
        Buffer.add_string buf (Printf.sprintf "#%d\n%c!\n" t (if v then '1' else '0'));
        prev := Some v
      end)
    values;
  (* closing time marker so readers know the dump's extent *)
  Buffer.add_string buf (Printf.sprintf "#%d\n" (Array.length values * clock_period));
  Buffer.contents buf

let of_signal ?timescale_ns ~name ~clock_period ~initial s =
  let m = Timeprint.Signal.length s in
  let values = Array.make m false in
  let cur = ref initial in
  for i = 0 to m - 1 do
    if Timeprint.Signal.change_at s i then cur := not !cur;
    values.(i) <- !cur
  done;
  of_values ?timescale_ns ~name ~clock_period values
