(** Value Change Dump (IEEE 1364) reader/writer.

    The practical on-ramp for the library: RTL simulators (Questa,
    Verilator, GHDL, Icarus) dump VCD, so a user can take an existing
    waveform, sample the signal they care about at its clock, and feed
    the samples straight into {!Timeprint.Logger} — or dump a
    reconstructed change signal back out for viewing in GTKWave.

    Supported subset: [$timescale], [$scope]/[$upscope], [$var] for
    scalar wires and vectors, [$dumpvars], scalar value changes
    ([0!]/[1!]/[x!]/[z!]) and vector changes ([b1010 !]). [x]/[z]
    sample as [false]. *)

type value = V0 | V1 | VX | VZ

type var = {
  id : string;  (** the short identifier code used in the value section *)
  name : string;  (** hierarchical name, [scope.subscope.name] *)
  width : int;
}

type t

val timescale_fs : t -> int
(** Timescale unit in femtoseconds (e.g. [1ns] → 1_000_000). *)

val vars : t -> var list

val find_var : t -> string -> var option
(** Lookup by hierarchical name, or by plain name when unambiguous. *)

val changes : t -> id:string -> (int * value) list
(** Scalar change events [(time, value)] of a variable, in time order,
    times in timescale units. For vector variables, the value of bit 0.
    Raises [Not_found] for an unknown id. *)

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

val sample :
  t -> name:string -> clock_period:int -> ?offset:int -> samples:int ->
  unit -> (bool array, string) result
(** [sample w ~name ~clock_period ~samples] reads the variable's value
    at times [offset + i·clock_period] for [i = 0 .. samples-1] —
    exactly what a clocked change-detector sees. [offset] defaults to
    [clock_period] (first sample at the end of cycle 0). *)

val to_signal :
  t -> name:string -> clock_period:int -> ?offset:int -> m:int ->
  unit -> (Timeprint.Signal.t list, string) result
(** Sample the waveform and split it into consecutive trace-cycle
    change signals (initial value taken from the waveform itself). *)

val of_values :
  ?timescale_ns:int -> name:string -> clock_period:int -> bool array -> string
(** Render a sampled waveform as VCD text (one scalar wire). *)

val of_signal :
  ?timescale_ns:int ->
  name:string ->
  clock_period:int ->
  initial:bool ->
  Timeprint.Signal.t ->
  string
(** Render a reconstructed change signal as the value waveform it
    implies, for viewing next to the original dump. *)
