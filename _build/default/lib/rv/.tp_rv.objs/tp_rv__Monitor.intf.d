lib/rv/monitor.mli: Format Timeprint
