lib/rv/monitor.ml: Format List Timeprint
