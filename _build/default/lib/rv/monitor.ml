type spec =
  | Deadline of { count : int; before : int }
  | Max_changes of int
  | Min_separation of int
  | Pulse_pairs
  | Window of { lo : int; hi : int }

type verdict = Pass | Fail

type state = {
  mutable count : int; (* changes seen this trace-cycle *)
  mutable count_before : int; (* changes seen before the deadline *)
  mutable last_change : int; (* cycle of previous change, -1 if none *)
  mutable expecting_pair : bool; (* Pulse_pairs: previous cycle opened a pair *)
  mutable bad : bool; (* safety violation latched *)
}

type t = {
  spec : spec;
  m : int;
  mutable cycle : int;
  st : state;
  mutable verdicts : verdict list; (* reversed *)
}

let create ~m spec =
  if m <= 0 then invalid_arg "Monitor.create";
  (match spec with
  | Deadline { count; before } ->
      if count < 0 || before < 0 then invalid_arg "Monitor.create: Deadline"
  | Max_changes n -> if n < 0 then invalid_arg "Monitor.create: Max_changes"
  | Min_separation n -> if n < 0 then invalid_arg "Monitor.create: Min_separation"
  | Window { lo; hi } -> if lo > hi then invalid_arg "Monitor.create: Window"
  | Pulse_pairs -> ());
  {
    spec;
    m;
    cycle = 0;
    st =
      {
        count = 0;
        count_before = 0;
        last_change = -1;
        expecting_pair = false;
        bad = false;
      };
    verdicts = [];
  }

let spec t = t.spec
let m t = t.m

let reset_state t =
  t.st.count <- 0;
  t.st.count_before <- 0;
  t.st.last_change <- -1;
  t.st.expecting_pair <- false;
  t.st.bad <- false;
  t.cycle <- 0

let observe t change =
  let st = t.st and c = t.cycle in
  if change then begin
    st.count <- st.count + 1;
    (match t.spec with
    | Deadline { before; _ } -> if c < before then st.count_before <- st.count_before + 1
    | Max_changes n -> if st.count > n then st.bad <- true
    | Min_separation n ->
        if st.last_change >= 0 && c - st.last_change - 1 < n then st.bad <- true
    | Pulse_pairs -> st.expecting_pair <- not st.expecting_pair
    | Window { lo; hi } -> if c < lo || c > hi then st.bad <- true);
    st.last_change <- c
  end
  else
    match t.spec with
    | Pulse_pairs -> if st.expecting_pair then st.bad <- true
    | Deadline _ | Max_changes _ | Min_separation _ | Window _ -> ()

let final_verdict t =
  let st = t.st in
  let ok =
    (not st.bad)
    &&
    match t.spec with
    | Deadline { count; _ } -> st.count_before >= count
    | Pulse_pairs -> not st.expecting_pair
    | Max_changes _ | Min_separation _ | Window _ -> true
  in
  if ok then Pass else Fail

let violated_so_far t =
  t.st.bad
  ||
  match t.spec with
  | Deadline { count; before } -> t.cycle >= before && t.st.count_before < count
  | Max_changes _ | Min_separation _ | Pulse_pairs | Window _ -> false

let step t ~change =
  observe t change;
  t.cycle <- t.cycle + 1;
  if t.cycle = t.m then begin
    let v = final_verdict t in
    t.verdicts <- v :: t.verdicts;
    reset_state t;
    Some v
  end
  else None

let verdicts t = List.rev t.verdicts

let run ~m spec s =
  if Timeprint.Signal.length s <> m then invalid_arg "Monitor.run: length";
  let t = create ~m spec in
  let out = ref Pass in
  for i = 0 to m - 1 do
    match step t ~change:(Timeprint.Signal.change_at s i) with
    | Some v -> out := v
    | None -> ()
  done;
  !out

let to_property (spec : spec) : Timeprint.Property.t =
  match spec with
  | Deadline { count; before } -> Timeprint.Property.Deadline { count; before }
  | Max_changes n ->
      (* at most n changes overall = not (at least n+1 before the end) *)
      Timeprint.Property.(Not (Deadline { count = n + 1; before = max_int }))
  | Min_separation n -> Timeprint.Property.Min_separation n
  | Pulse_pairs -> Timeprint.Property.Pulse_pairs
  | Window { lo; hi } -> Timeprint.Property.Window { lo; hi }

type cost = { registers : int; comparators : int; adders : int }

let bits n =
  let rec go b = if 1 lsl b >= n + 1 then b else go (b + 1) in
  go 1

let cost ~m spec =
  let cycle_counter = bits m in
  match spec with
  | Deadline { count; _ } ->
      { registers = cycle_counter + bits count; comparators = 2; adders = 2 }
  | Max_changes n -> { registers = cycle_counter + bits n; comparators = 1; adders = 2 }
  | Min_separation n ->
      { registers = cycle_counter + bits (max n m); comparators = 1; adders = 2 }
  | Pulse_pairs -> { registers = cycle_counter + 1; comparators = 0; adders = 1 }
  | Window _ -> { registers = cycle_counter; comparators = 2; adders = 1 }

let pp_spec ppf = function
  | Deadline { count; before } -> Format.fprintf ppf "deadline(k=%d,D=%d)" count before
  | Max_changes n -> Format.fprintf ppf "max-changes(%d)" n
  | Min_separation n -> Format.fprintf ppf "min-separation(%d)" n
  | Pulse_pairs -> Format.pp_print_string ppf "pulse-pairs"
  | Window { lo; hi } -> Format.fprintf ppf "window[%d..%d]" lo hi

let pp_verdict ppf = function
  | Pass -> Format.pp_print_string ppf "PASS"
  | Fail -> Format.pp_print_string ppf "FAIL"
