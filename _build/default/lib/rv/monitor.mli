(** Synthesizable-style runtime-verification monitors.

    The taxonomy of Figures 1–3: a subset of the {e defined} properties
    is compiled to on-chip monitors that check every trace-cycle during
    deployment. Their verdicts do double duty — they raise alarms
    online, and a [Pass] verdict licenses adding the property to the
    reconstruction assumptions ({!to_property}), pruning the SAT search
    exactly as the dashed arrows of Figure 3 describe.

    Each monitor is a small Mealy machine over the per-cycle change
    bit, resetting at trace-cycle boundaries; {!cost} estimates its
    hardware footprint, the quantity that limits how many monitors fit
    on chip (§1). *)

type spec =
  | Deadline of { count : int; before : int }
      (** at least [count] changes strictly before cycle [before] *)
  | Max_changes of int  (** at most [n] changes per trace-cycle *)
  | Min_separation of int
      (** at least [n] quiet cycles between consecutive changes *)
  | Pulse_pairs  (** changes arrive as disjoint adjacent pairs *)
  | Window of { lo : int; hi : int }  (** changes only inside [lo..hi] *)

type verdict = Pass | Fail

type t

val create : m:int -> spec -> t
(** Monitor for trace-cycles of [m] clock-cycles. *)

val spec : t -> spec
val m : t -> int

val step : t -> change:bool -> verdict option
(** Clock the monitor one cycle; returns the verdict when this step
    closes a trace-cycle. *)

val violated_so_far : t -> bool
(** Early detection: [true] as soon as the current trace-cycle can no
    longer pass (safety prefix violation). *)

val verdicts : t -> verdict list
(** Verdicts of completed trace-cycles, oldest first. *)

val run : m:int -> spec -> Timeprint.Signal.t -> verdict
(** One-shot evaluation over a full trace-cycle. *)

val to_property : spec -> Timeprint.Property.t
(** The property a [Pass] verdict establishes, in reconstruction form.
    [run ~m spec s = Pass ⇔ Property.eval (to_property spec) s]. *)

type cost = { registers : int; comparators : int; adders : int }
(** Rough synthesis estimate: state bits, magnitude comparators and
    counters/incrementers. *)

val cost : m:int -> spec -> cost

val pp_spec : Format.formatter -> spec -> unit
val pp_verdict : Format.formatter -> verdict -> unit
