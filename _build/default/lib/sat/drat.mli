(** DRAT proof checking (RUP fragment).

    Verifies the certificates emitted by {!Solver.enable_proof}: each
    addition line must be derivable by {e reverse unit propagation}
    (asserting the negation of every literal in the added clause and
    unit-propagating over the input formula plus all previously added
    clauses must yield a conflict); deletion lines ([d …]) remove
    clauses. The proof refutes the formula when it derives the empty
    clause.

    The checker is deliberately independent of the solver — a naive
    counter-free unit propagator over a plain clause list — so a bug in
    the CDCL machinery cannot vouch for itself. *)

val check : Cnf.t -> string -> (unit, string) result
(** [check cnf proof] validates [proof] as a DRAT refutation of [cnf].
    [Ok ()] means every addition was RUP and the empty clause was
    derived. Raises nothing; malformed lines are reported in the
    error. The formula must be pure CNF (XOR constraints make the
    certificate unsound and are rejected). *)

val check_refutation : Cnf.t -> Solver.t -> (unit, string) result
(** Convenience: take the proof out of a solver that answered [Unsat]
    and check it against the problem it solved. *)
