(* Sinz, "Towards an Optimal CNF Encoding of Boolean Cardinality
   Constraints", CP 2005 — the LT_SEQ sequential counter.

   Registers s_{i,j} (1-based in the literature) hold "at least j of
   x_1..x_i are true". Clauses for AtMost-k over x_1..x_n:

     (¬x_1 ∨ s_{1,1})
     (¬s_{1,j})                        for 2 <= j <= k
     (¬x_i ∨ s_{i,1})                  for 2 <= i < n
     (¬s_{i-1,1} ∨ s_{i,1})            for 2 <= i < n
     (¬x_i ∨ ¬s_{i-1,j-1} ∨ s_{i,j})   for 2 <= i < n, 2 <= j <= k
     (¬s_{i-1,j} ∨ s_{i,j})            for 2 <= i < n, 2 <= j <= k
     (¬x_i ∨ ¬s_{i-1,k})               for 2 <= i <= n *)

let at_most ?guard p lits k =
  if k < 0 then invalid_arg "Cardinality.at_most: negative bound";
  let add_clause p cl =
    Cnf.add_clause p (match guard with Some g -> Lit.negate g :: cl | None -> cl)
  in
  let xs = Array.of_list lits in
  let n = Array.length xs in
  if k = 0 then Array.iter (fun l -> add_clause p [ Lit.negate l ]) xs
  else if n > k then begin
    (* s.(i).(j) for 0-based i in [0..n-2], j in [0..k-1] *)
    let s =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Cnf.new_var p))
    in
    let reg i j = Lit.pos s.(i).(j) in
    add_clause p [ Lit.negate xs.(0); reg 0 0 ];
    for j = 1 to k - 1 do
      add_clause p [ Lit.negate (reg 0 j) ]
    done;
    for i = 1 to n - 2 do
      add_clause p [ Lit.negate xs.(i); reg i 0 ];
      add_clause p [ Lit.negate (reg (i - 1) 0); reg i 0 ];
      for j = 1 to k - 1 do
        add_clause p
          [ Lit.negate xs.(i); Lit.negate (reg (i - 1) (j - 1)); reg i j ];
        add_clause p [ Lit.negate (reg (i - 1) j); reg i j ]
      done;
      add_clause p [ Lit.negate xs.(i); Lit.negate (reg (i - 1) (k - 1)) ]
    done;
    if n >= 2 then
      add_clause p
        [ Lit.negate xs.(n - 1); Lit.negate (reg (n - 2) (k - 1)) ]
  end

let guarded_empty ?guard p =
  Cnf.add_clause p (match guard with Some g -> [ Lit.negate g ] | None -> [])

let at_least ?guard p lits k =
  let n = List.length lits in
  if k > n then guarded_empty ?guard p (* unsatisfiable *)
  else if k > 0 then at_most ?guard p (List.map Lit.negate lits) (n - k)

let exactly ?guard p lits k =
  let n = List.length lits in
  if k < 0 || k > n then guarded_empty ?guard p
  else begin
    at_most ?guard p lits k;
    at_least ?guard p lits k
  end

(* Naive: forbid every (k+1)-subset from being simultaneously true. *)
let rec subsets n = function
  | _ when n = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (n - 1) rest) @ subsets n rest

let at_most_pairwise p lits k =
  if k < 0 then invalid_arg "Cardinality.at_most_pairwise";
  List.iter
    (fun subset -> Cnf.add_clause p (List.map Lit.negate subset))
    (subsets (k + 1) lits)

let exactly_pairwise p lits k =
  let n = List.length lits in
  if k < 0 || k > n then Cnf.add_clause p []
  else begin
    at_most_pairwise p lits k;
    (* at least k: every (n-k+1)-subset contains a true literal *)
    List.iter (fun subset -> Cnf.add_clause p subset) (subsets (n - k + 1) lits)
  end
