type xor_constraint = { vars : int list; parity : bool; guard : Lit.t option }

type t = {
  mutable nvars : int;
  mutable cls : Lit.t list list; (* reversed *)
  mutable nclauses : int;
  mutable xs : xor_constraint list; (* reversed *)
  mutable nxors : int;
}

let create () = { nvars = 0; cls = []; nclauses = 0; xs = []; nxors = 0 }

let new_var p =
  let v = p.nvars in
  p.nvars <- v + 1;
  v

let ensure_vars p n = if n > p.nvars then p.nvars <- n
let nvars p = p.nvars

let add_clause p lits =
  List.iter (fun l -> ensure_vars p (Lit.var l + 1)) lits;
  p.cls <- lits :: p.cls;
  p.nclauses <- p.nclauses + 1

(* Cancel duplicate variables pairwise: v XOR v = 0. *)
let normalize_xor_vars vars =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt tbl v with
      | Some () -> Hashtbl.remove tbl v
      | None -> Hashtbl.add tbl v ())
    vars;
  List.filter (Hashtbl.mem tbl) (List.sort_uniq Int.compare vars)

let add_xor ?guard p ~vars ~parity =
  List.iter (fun v -> ensure_vars p (v + 1)) vars;
  (match guard with Some g -> ensure_vars p (Lit.var g + 1) | None -> ());
  let vars = normalize_xor_vars vars in
  match (vars, parity, guard) with
  | [], false, _ -> () (* 0 = 0: trivially true *)
  | [], true, None ->
      (* 0 = 1: trivially false *)
      p.cls <- [] :: p.cls;
      p.nclauses <- p.nclauses + 1
  | [], true, Some g ->
      (* false under the guard: the guard cannot hold *)
      p.cls <- [ Lit.negate g ] :: p.cls;
      p.nclauses <- p.nclauses + 1
  | _ ->
      p.xs <- { vars; parity; guard } :: p.xs;
      p.nxors <- p.nxors + 1

let add_xor_chunked ?(chunk = 6) ?guard p ~vars ~parity =
  if chunk < 3 then invalid_arg "Cnf.add_xor_chunked: chunk must be >= 3";
  let vars = normalize_xor_vars vars in
  (* [len] is [List.length vars], threaded through the recursion so a
     long row stays linear instead of re-measuring the tail each step *)
  let rec go head vars len =
    let head_len = match head with Some _ -> 1 | None -> 0 in
    if len + head_len <= chunk then
      add_xor ?guard p
        ~vars:(match head with Some a -> a :: vars | None -> vars)
        ~parity
    else begin
      let take = chunk - 1 - head_len in
      let rec split i = function
        | rest when i = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: tl ->
            let a, b = split (i - 1) tl in
            (x :: a, b)
      in
      let now, rest = split take vars in
      let aux = new_var p in
      add_xor ?guard p
        ~vars:((match head with Some a -> a :: now | None -> now) @ [ aux ])
        ~parity:false;
      go (Some aux) rest (len - take)
    end
  in
  go None vars (List.length vars)

let clauses p = List.rev p.cls
let xors p = List.rev p.xs
let nclauses p = p.nclauses
let nxors p = p.nxors

(* All clauses forbidding assignments of [vars] whose parity differs
   from [parity]: 2^(n-1) clauses of width n. *)
let xor_direct_cnf vars parity =
  let vs = Array.of_list vars in
  let n = Array.length vs in
  let out = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let pc = ref 0 in
    for i = 0 to n - 1 do
      if (mask lsr i) land 1 = 1 then incr pc
    done;
    let bad_parity = !pc land 1 = 1 in
    if bad_parity <> parity then begin
      (* the assignment (v_i = bit i of mask) violates the xor; forbid it *)
      let clause =
        List.init n (fun i -> Lit.make vs.(i) ((mask lsr i) land 1 = 0))
      in
      out := clause :: !out
    end
  done;
  !out

let expand_xors ?(chunk = 4) p =
  if chunk < 3 then invalid_arg "Cnf.expand_xors: chunk must be >= 3";
  let q = create () in
  ensure_vars q p.nvars;
  List.iter (add_clause q) (clauses p);
  let expand { vars; parity; guard } =
    (* Split v1 ⊕ … ⊕ vn = parity into chained chunks through fresh
       auxiliaries: (v1 ⊕ … ⊕ v_c ⊕ a1 = 0), (a1 ⊕ v_{c+1} … ⊕ a2 = 0),
       …, last chunk closes with = parity. A guarded row prefixes ¬g to
       every emitted clause, preserving the switch-off semantics. *)
    let add_clause q cl =
      add_clause q (match guard with Some g -> Lit.negate g :: cl | None -> cl)
    in
    let rec go acc_head vars =
      let n = List.length vars in
      if n + (match acc_head with Some _ -> 1 | None -> 0) <= chunk then begin
        let all = match acc_head with Some a -> a :: vars | None -> vars in
        List.iter (add_clause q) (xor_direct_cnf all parity)
      end
      else begin
        let takeable = chunk - 1 - (match acc_head with Some _ -> 1 | None -> 0) in
        let rec split i = function
          | xs when i = 0 -> ([], xs)
          | [] -> ([], [])
          | x :: xs ->
              let a, b = split (i - 1) xs in
              (x :: a, b)
        in
        let now, rest = split takeable vars in
        let aux = new_var q in
        let all = (match acc_head with Some a -> a :: now | None -> now) @ [ aux ] in
        List.iter (add_clause q) (xor_direct_cnf all false);
        go (Some aux) rest
      end
    in
    go None vars
  in
  List.iter expand (xors p);
  q

let eval p a =
  if Array.length a < p.nvars then invalid_arg "Cnf.eval: assignment too short";
  let lit_true l = if Lit.sign l then a.(Lit.var l) else not a.(Lit.var l) in
  List.for_all (fun c -> List.exists lit_true c) (clauses p)
  && List.for_all
       (fun { vars; parity; guard } ->
         (match guard with Some g -> not (lit_true g) | None -> false)
         || List.fold_left (fun acc v -> acc <> a.(v)) false vars = parity)
       (xors p)

let copy p =
  { nvars = p.nvars; cls = p.cls; nclauses = p.nclauses; xs = p.xs; nxors = p.nxors }
