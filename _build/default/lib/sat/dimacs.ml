let to_buffer buf p =
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.nvars p) (Cnf.nclauses p + Cnf.nxors p));
  List.iter
    (fun clause ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " "))
        clause;
      Buffer.add_string buf "0\n")
    (Cnf.clauses p);
  List.iter
    (fun { Cnf.vars; parity } ->
      (* encode parity by negating the first literal when parity=false *)
      Buffer.add_char buf 'x';
      (match vars with
      | [] -> ()
      | v0 :: rest ->
          Buffer.add_string buf (string_of_int (if parity then v0 + 1 else -(v0 + 1)));
          List.iter
            (fun v -> Buffer.add_string buf (" " ^ string_of_int (v + 1)))
            rest);
      Buffer.add_string buf " 0\n")
    (Cnf.xors p)

let to_string p =
  let buf = Buffer.create 4096 in
  to_buffer buf p;
  Buffer.contents buf

let output oc p = output_string oc (to_string p)

let parse_string text =
  let p = Cnf.create () in
  let lines = String.split_on_char '\n' text in
  let fail lineno msg = failwith (Printf.sprintf "Dimacs: line %d: %s" lineno msg) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
            match int_of_string_opt nv with
            | Some n when n >= 0 -> Cnf.ensure_vars p n
            | _ -> fail lineno "bad variable count")
        | _ -> fail lineno "bad problem line"
      end
      else begin
        let is_xor = line.[0] = 'x' in
        let body =
          if is_xor then String.sub line 1 (String.length line - 1) else line
        in
        let nums =
          String.split_on_char ' ' body
          |> List.filter (( <> ) "")
          |> List.map (fun tok ->
                 match int_of_string_opt tok with
                 | Some n -> n
                 | None -> fail lineno ("bad literal " ^ tok))
        in
        match List.rev nums with
        | 0 :: rev_lits ->
            let lits = List.rev rev_lits in
            if is_xor then begin
              let parity = ref true in
              let vars =
                List.map
                  (fun n ->
                    if n = 0 then fail lineno "zero literal in xor"
                    else begin
                      if n < 0 then parity := not !parity;
                      abs n - 1
                    end)
                  lits
              in
              Cnf.add_xor p ~vars ~parity:!parity
            end
            else Cnf.add_clause p (List.map Lit.of_dimacs lits)
        | _ -> fail lineno "clause not terminated by 0"
      end)
    lines;
  p

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
