(** CNF encodings of Boolean cardinality constraints.

    The reconstruction problem fixes the number of signal changes to
    exactly [k] (§4.2). A naive encoding needs [C(m, k+1) + C(m, m-k+1)]
    clauses; following the paper we use Sinz's sequential-counter
    encoding [20], which introduces [O(m·k)] auxiliary variables and
    [O(m·k)] clauses. The naive pairwise encoding is kept for the
    encoding ablation and for cross-checks on small instances. *)

val at_most : ?guard:Lit.t -> Cnf.t -> Lit.t list -> int -> unit
(** [at_most p lits k] constrains at most [k] of [lits] to be true
    (sequential counter). [k >= 0]; [k = 0] emits unit clauses.
    With [?guard:g], the constraint is only enforced in models where
    [g] is true (every emitted clause carries [¬g]). *)

val at_least : ?guard:Lit.t -> Cnf.t -> Lit.t list -> int -> unit
(** At least [k] true, via [at_most] on the negations. *)

val exactly : ?guard:Lit.t -> Cnf.t -> Lit.t list -> int -> unit
(** Exactly [k] true. With [k] out of range [0 .. length lits] the
    problem becomes unsatisfiable. *)

val at_most_pairwise : Cnf.t -> Lit.t list -> int -> unit
(** Naive encoding: one clause per [(k+1)]-subset. Exponential; only
    sensible for small inputs (ablation baseline). *)

val exactly_pairwise : Cnf.t -> Lit.t list -> int -> unit
