lib/sat/drat.ml: Cnf Fun Hashtbl List Lit Printf Solver String
