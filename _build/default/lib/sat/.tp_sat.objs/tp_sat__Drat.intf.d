lib/sat/drat.mli: Cnf Solver
