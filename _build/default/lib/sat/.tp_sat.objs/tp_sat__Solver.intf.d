lib/sat/solver.mli: Cnf Lit
