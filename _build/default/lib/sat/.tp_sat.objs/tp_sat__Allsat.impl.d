lib/sat/allsat.ml: Array List Lit Solver
