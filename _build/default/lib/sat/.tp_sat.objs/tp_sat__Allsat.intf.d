lib/sat/allsat.mli: Solver
