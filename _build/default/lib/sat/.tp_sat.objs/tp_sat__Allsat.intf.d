lib/sat/allsat.mli: Lit Solver
