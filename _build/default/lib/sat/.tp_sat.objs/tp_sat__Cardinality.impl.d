lib/sat/cardinality.ml: Array Cnf List Lit
