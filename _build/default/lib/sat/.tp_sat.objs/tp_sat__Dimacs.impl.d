lib/sat/dimacs.ml: Buffer Cnf Fun List Lit Printf String
