lib/sat/solver.ml: Array Buffer Cnf Float Hashtbl Heap Int List Lit Vec
