lib/sat/tseitin.ml: Cnf List Lit
