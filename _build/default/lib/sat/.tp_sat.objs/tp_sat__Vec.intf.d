lib/sat/vec.mli:
