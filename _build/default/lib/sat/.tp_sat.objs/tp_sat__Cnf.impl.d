lib/sat/cnf.ml: Array Hashtbl Int List Lit
