lib/sat/tseitin.mli: Cnf Lit
