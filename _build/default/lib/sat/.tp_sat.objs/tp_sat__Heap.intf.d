lib/sat/heap.mli:
