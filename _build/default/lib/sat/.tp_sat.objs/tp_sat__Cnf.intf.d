lib/sat/cnf.mli: Lit
