lib/sat/cardinality.mli: Cnf Lit
