type formula =
  | True
  | False
  | Var of int
  | Not of formula
  | And of formula list
  | Or of formula list
  | Xor of formula list
  | Imp of formula * formula
  | Iff of formula * formula

let var v = Var v
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let not_ f = Not f
let conj fs = And fs
let disj fs = Or fs

(* A literal for the constant true, created once per problem on demand
   would need state; instead we encode constants with a unit-clause
   variable allocated per call site. Cheap and simple. *)
let const_lit p b =
  let v = Cnf.new_var p in
  Cnf.add_clause p [ Lit.make v b ];
  Lit.pos v

let rec to_lit p = function
  | True -> const_lit p true
  | False -> const_lit p false
  | Var v ->
      Cnf.ensure_vars p (v + 1);
      Lit.pos v
  | Not f -> Lit.negate (to_lit p f)
  | And [] -> const_lit p true
  | And [ f ] -> to_lit p f
  | And fs ->
      let ls = List.map (to_lit p) fs in
      let a = Lit.pos (Cnf.new_var p) in
      (* a -> l_i ; (l_1 & … & l_n) -> a *)
      List.iter (fun l -> Cnf.add_clause p [ Lit.negate a; l ]) ls;
      Cnf.add_clause p (a :: List.map Lit.negate ls);
      a
  | Or [] -> const_lit p false
  | Or [ f ] -> to_lit p f
  | Or fs ->
      let ls = List.map (to_lit p) fs in
      let a = Lit.pos (Cnf.new_var p) in
      (* l_i -> a ; a -> (l_1 | … | l_n) *)
      List.iter (fun l -> Cnf.add_clause p [ Lit.negate l; a ]) ls;
      Cnf.add_clause p (Lit.negate a :: ls);
      a
  | Xor fs ->
      let ls = List.map (to_lit p) fs in
      let a = Cnf.new_var p in
      (* a ⊕ l_1 ⊕ … ⊕ l_n = 0, with negative literals folded into the
         parity: ¬v = v ⊕ 1. *)
      let parity = ref false in
      let vars =
        a
        :: List.map
             (fun l ->
               if not (Lit.sign l) then parity := not !parity;
               Lit.var l)
             ls
      in
      Cnf.add_xor p ~vars ~parity:!parity;
      Lit.pos a
  | Imp (f, g) -> to_lit p (Or [ Not f; g ])
  | Iff (f, g) ->
      let lf = to_lit p f and lg = to_lit p g in
      let a = Lit.pos (Cnf.new_var p) in
      Cnf.add_clause p [ Lit.negate a; Lit.negate lf; lg ];
      Cnf.add_clause p [ Lit.negate a; lf; Lit.negate lg ];
      Cnf.add_clause p [ a; lf; lg ];
      Cnf.add_clause p [ a; Lit.negate lf; Lit.negate lg ];
      a

let assert_formula p f =
  match f with
  | True -> ()
  | And fs when List.for_all (function Var _ | Not (Var _) -> true | _ -> false) fs ->
      (* fast path: a conjunction of literals becomes unit clauses *)
      List.iter
        (function
          | Var v -> Cnf.add_clause p [ Lit.pos v ]
          | Not (Var v) -> Cnf.add_clause p [ Lit.neg_of v ]
          | _ -> assert false)
        fs
  | Or fs when List.for_all (function Var _ | Not (Var _) -> true | _ -> false) fs ->
      (* fast path: a disjunction of literals is a single clause *)
      Cnf.add_clause p
        (List.map
           (function
             | Var v -> Lit.pos v
             | Not (Var v) -> Lit.neg_of v
             | _ -> assert false)
           fs)
  | f -> Cnf.add_clause p [ to_lit p f ]

let rec eval env = function
  | True -> true
  | False -> false
  | Var v -> env v
  | Not f -> not (eval env f)
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs
  | Xor fs -> List.fold_left (fun acc f -> acc <> eval env f) false fs
  | Imp (f, g) -> (not (eval env f)) || eval env g
  | Iff (f, g) -> eval env f = eval env g
