type outcome = { models : bool array list; complete : bool }

let iter ?(max_models = max_int) ?(conflict_budget = max_int) f s ~project =
  let vars = Array.of_list project in
  let rec go found =
    if found >= max_models then false
    else
      match Solver.solve ~conflict_budget s with
      | Unsat -> true
      | Unknown -> false
      | Sat ->
          let m = Array.map (Solver.value s) vars in
          f m;
          (* block this projected model *)
          let blocking =
            Array.to_list (Array.mapi (fun i v -> Lit.make v (not m.(i))) vars)
          in
          Solver.add_clause s blocking;
          go (found + 1)
  in
  go 0

let enumerate ?max_models ?conflict_budget s ~project =
  let acc = ref [] in
  let complete =
    iter ?max_models ?conflict_budget (fun m -> acc := m :: !acc) s ~project
  in
  { models = List.rev !acc; complete }

let count ?max_models s ~project =
  let n = ref 0 in
  ignore (iter ?max_models (fun _ -> incr n) s ~project);
  !n
