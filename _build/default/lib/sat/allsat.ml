type outcome = { models : bool array list; complete : bool }

let iter ?(max_models = max_int) ?(conflict_budget = max_int) ?(assumptions = [])
    ?guard f s ~project =
  let vars = Array.of_list project in
  let assumptions =
    match guard with Some g -> g :: assumptions | None -> assumptions
  in
  (* the budget is global across the whole enumeration: each solve call
     gets whatever is left, measured by the solver's conflict counter *)
  let remaining = ref conflict_budget in
  let block m =
    let blocking =
      Array.to_list (Array.mapi (fun i v -> Lit.make v (not m.(i))) vars)
    in
    let blocking =
      match guard with Some g -> Lit.negate g :: blocking | None -> blocking
    in
    Solver.add_clause s blocking
  in
  let rec go found =
    if found >= max_models || !remaining <= 0 then false
    else begin
      let before = (Solver.stats s).conflicts in
      let r = Solver.solve ~conflict_budget:!remaining ~assumptions s in
      remaining := !remaining - ((Solver.stats s).conflicts - before);
      match r with
      | Unsat -> true
      | Unknown -> false
      | Sat ->
          let m = Array.map (Solver.value s) vars in
          f m;
          block m;
          go (found + 1)
    end
  in
  go 0

let enumerate ?max_models ?conflict_budget ?assumptions ?guard s ~project =
  let acc = ref [] in
  let complete =
    iter ?max_models ?conflict_budget ?assumptions ?guard
      (fun m -> acc := m :: !acc)
      s ~project
  in
  { models = List.rev !acc; complete }

let count ?max_models ?conflict_budget ?assumptions ?guard s ~project =
  let n = ref 0 in
  let complete =
    iter ?max_models ?conflict_budget ?assumptions ?guard
      (fun _ -> incr n)
      s ~project
  in
  (!n, if complete then `Exact else `Lower_bound)
