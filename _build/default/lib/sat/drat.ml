(* Naive RUP checker: clause database as int-list lists, unit
   propagation by repeated scanning. Quadratic and proud — the point is
   independence from the solver, not speed. *)

type db = { mutable clauses : Lit.t list list }

(* unit-propagate the given assumptions over the database; true iff a
   conflict is reached *)
let propagates_to_conflict db assumptions =
  let assign : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let set l =
    let v = Lit.var l and b = Lit.sign l in
    match Hashtbl.find_opt assign v with
    | Some b' -> if b <> b' then raise Exit
    | None -> Hashtbl.replace assign v b
  in
  try
    List.iter set assumptions;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun clause ->
          (* find the clause's status under the current assignment *)
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match Hashtbl.find_opt assign (Lit.var l) with
              | Some b -> if b = Lit.sign l then satisfied := true
              | None -> unassigned := l :: !unassigned)
            clause;
          if not !satisfied then begin
            match List.sort_uniq Lit.compare !unassigned with
            | [] -> raise Exit (* conflict *)
            | [ unit_lit ] ->
                set unit_lit;
                changed := true
            | _ -> ()
          end)
        db.clauses
    done;
    false
  with Exit -> true

let rup db clause =
  propagates_to_conflict db (List.map Lit.negate clause)

let parse_line line =
  let line = String.trim line in
  if line = "" then `Blank
  else begin
    let deletion = String.length line > 1 && line.[0] = 'd' in
    let body = if deletion then String.sub line 1 (String.length line - 1) else line in
    let nums =
      String.split_on_char ' ' body
      |> List.filter (( <> ) "")
      |> List.map int_of_string_opt
    in
    if List.exists (( = ) None) nums then `Malformed
    else begin
      let nums = List.filter_map Fun.id nums in
      match List.rev nums with
      | 0 :: rev -> (
          let lits = List.rev_map Lit.of_dimacs rev in
          let lits = List.rev lits in
          if deletion then `Delete lits else `Add lits)
      | _ -> `Malformed
    end
  end

let same_clause a b =
  List.sort Lit.compare a = List.sort Lit.compare b

let check cnf proof =
  if Cnf.nxors cnf > 0 then
    Error "Drat.check: formula has XOR constraints; expand them first"
  else begin
    let db = { clauses = Cnf.clauses cnf } in
    let refuted = ref (List.exists (( = ) []) db.clauses) in
    let rec go lineno = function
      | [] ->
          if !refuted then Ok ()
          else Error "proof ends without deriving the empty clause"
      | line :: rest -> (
          match parse_line line with
          | `Blank -> go (lineno + 1) rest
          | `Malformed -> Error (Printf.sprintf "line %d: malformed" lineno)
          | `Delete lits ->
              let found = ref false in
              db.clauses <-
                List.filter
                  (fun c ->
                    if (not !found) && same_clause c lits then begin
                      found := true;
                      false
                    end
                    else true)
                  db.clauses;
              (* deleting a clause never endangers soundness *)
              go (lineno + 1) rest
          | `Add lits ->
              if not (rup db lits) then
                Error
                  (Printf.sprintf "line %d: clause is not RUP" lineno)
              else begin
                db.clauses <- lits :: db.clauses;
                if lits = [] then refuted := true;
                go (lineno + 1) rest
              end)
    in
    go 1 (String.split_on_char '\n' proof)
  end

let check_refutation cnf solver = check cnf (Solver.proof solver)
