type t = int

let make v sign =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (v lsl 1) lor (if sign then 0 else 1)

let pos v = make v true
let neg_of v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_index l = l
let of_index i = if i < 0 then invalid_arg "Lit.of_index" else i

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero"
  else if n > 0 then pos (n - 1)
  else neg_of (-n - 1)

let to_dimacs l = if sign l then var l + 1 else -(var l + 1)
let equal = Int.equal
let compare = Int.compare
let pp ppf l = Format.fprintf ppf "%s%d" (if sign l then "" else "-") (var l + 1)
