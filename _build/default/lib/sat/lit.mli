(** Propositional literals.

    Variables are non-negative integers; a literal packs a variable and
    a sign into a single int ([2*var] positive, [2*var+1] negative), the
    classic MiniSat layout, so literals index watch lists directly. *)

type t = private int

val make : int -> bool -> t
(** [make v sign] is the literal on variable [v]; [sign = true] means
    the positive literal. Raises [Invalid_argument] if [v < 0]. *)

val pos : int -> t
(** Positive literal of a variable. *)

val neg_of : int -> t
(** Negative literal of a variable. *)

val var : t -> int
val sign : t -> bool
(** [sign l] is [true] for a positive literal. *)

val negate : t -> t

val to_index : t -> int
(** The packed int, usable as an array index in [0 .. 2*nvars-1]. *)

val of_index : int -> t
(** Inverse of {!to_index}. *)

val of_dimacs : int -> t
(** DIMACS convention: positive ints are positive literals on variable
    [n-1], negative ints negative literals. Raises on [0]. *)

val to_dimacs : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
