type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let size v = v.len
let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (2 * cap) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let swap_remove v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.swap_remove";
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  v.data.(v.len) <- v.dummy

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (push v) xs;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  Array.fill v.data !j (v.len - !j) v.dummy;
  v.len <- !j
