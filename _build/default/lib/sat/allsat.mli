(** Model enumeration (All-SAT) by blocking clauses.

    Reconstruction needs {e all} signals abstracting to a log entry
    (§4.2), or the first few, or a yes/no answer under a property. We
    enumerate models projected onto the [m] signal variables: after
    each model, a blocking clause over the projection variables forbids
    it and the (incremental) solver continues. *)

type outcome = {
  models : bool array list;  (** projected models, in discovery order *)
  complete : bool;
      (** [true] when enumeration provably exhausted the solution space
          (final answer was UNSAT), [false] when stopped by [max_models]
          or by the conflict budget *)
}

val enumerate :
  ?max_models:int ->
  ?conflict_budget:int ->
  Solver.t ->
  project:int list ->
  outcome
(** [enumerate s ~project] repeatedly solves, records each model
    restricted to the variables [project] (in the given order), blocks
    it, and continues. The solver is left with the blocking clauses
    installed. *)

val count : ?max_models:int -> Solver.t -> project:int list -> int
(** Number of projected models (capped by [max_models] if given). *)

val iter :
  ?max_models:int ->
  ?conflict_budget:int ->
  (bool array -> unit) ->
  Solver.t ->
  project:int list ->
  bool
(** Streaming variant; returns the [complete] flag. *)
