(** Extended DIMACS I/O.

    Standard [p cnf] bodies plus Cryptominisat-style XOR lines: a line
    beginning with [x] lists literals whose XOR must be {e true}; a
    negated leading literal flips the required parity, e.g.
    [x1 2 -3 0] asserts [v1 ⊕ v2 ⊕ ¬v3 = 1]. This lets instances
    produced by the reconstruction reduction be exported to (and
    cross-checked against) external solvers. *)

val to_string : Cnf.t -> string

val output : out_channel -> Cnf.t -> unit

val parse_string : string -> Cnf.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val parse_file : string -> Cnf.t
