(** Tseitin transformation: Boolean formulas to equisatisfiable CNF.

    Temporal properties (§5.1.3) arrive as arbitrary Boolean structure
    over the per-cycle change variables — e.g. P2 is a disjunction of
    conjunctions of adjacent cycles. This module compiles such formulas
    into the clause database with one fresh variable per connective. *)

type formula =
  | True
  | False
  | Var of int  (** problem variable index *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Xor of formula list  (** parity: true iff an odd number hold *)
  | Imp of formula * formula
  | Iff of formula * formula

val var : int -> formula
val ( &&& ) : formula -> formula -> formula
val ( ||| ) : formula -> formula -> formula
val not_ : formula -> formula
val conj : formula list -> formula
val disj : formula list -> formula

val to_lit : Cnf.t -> formula -> Lit.t
(** [to_lit p f] adds defining clauses for [f] to [p] and returns a
    literal equivalent to [f] in every model of the added clauses. *)

val assert_formula : Cnf.t -> formula -> unit
(** Constrain [f] to hold. *)

val eval : (int -> bool) -> formula -> bool
(** Reference semantics, for testing. *)
