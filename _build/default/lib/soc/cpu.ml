type access = { cycle : int; addr : int }

type result = {
  accesses : access list;
  halted_at : int option;
  memory : (int, int) Hashtbl.t;
}

let code_base = 0x10000

let run ?(wait_states = 1) ?(max_cycles = 100_000) prog =
  (match Isa.validate prog with
  | Ok () -> ()
  | Error e -> invalid_arg ("Cpu.run: " ^ e));
  if wait_states < 0 then invalid_arg "Cpu.run: wait_states";
  let mem = Hashtbl.create 256 in
  let regs = Array.make 8 0 in
  let accesses = ref [] in
  let latency = 1 + wait_states in
  let cycle = ref 0 in
  let pc = ref 0 in
  let halted = ref None in
  let access addr =
    accesses := { cycle = !cycle; addr } :: !accesses;
    cycle := !cycle + latency
  in
  let load addr = match Hashtbl.find_opt mem addr with Some v -> v | None -> 0 in
  (try
     while !halted = None && !cycle < max_cycles do
       if !pc < 0 || !pc >= Array.length prog then raise Exit;
       let instr = prog.(!pc) in
       access (code_base + !pc);
       (* execute stage *)
       incr cycle;
       (match instr with
       | Isa.Li { rd; imm } ->
           regs.(rd) <- imm;
           incr pc
       | Isa.Ld { rd; addr } ->
           access addr;
           regs.(rd) <- load addr;
           incr pc
       | Isa.St { rs; addr } ->
           access addr;
           Hashtbl.replace mem addr regs.(rs);
           incr pc
       | Isa.Ldr { rd; ra } ->
           let addr = regs.(ra) in
           access addr;
           regs.(rd) <- load addr;
           incr pc
       | Isa.Str { rs; ra } ->
           let addr = regs.(ra) in
           access addr;
           Hashtbl.replace mem addr regs.(rs);
           incr pc
       | Isa.Add { rd; ra; rb } ->
           regs.(rd) <- regs.(ra) + regs.(rb);
           incr pc
       | Isa.Addi { rd; ra; imm } ->
           regs.(rd) <- regs.(ra) + imm;
           incr pc
       | Isa.Sub { rd; ra; rb } ->
           regs.(rd) <- regs.(ra) - regs.(rb);
           incr pc
       | Isa.Jnz { r; target } -> if regs.(r) <> 0 then pc := target else incr pc
       | Isa.Jmp target -> pc := target
       | Isa.Nop -> incr pc
       | Isa.Halt -> halted := Some !cycle)
     done
   with Exit -> ());
  { accesses = List.rev !accesses; halted_at = !halted; memory = mem }
