open Tp_bitvec

type t = {
  divisor : int;
  queue : int Queue.t;
  mutable shifting : bool list; (* bits left of the current frame *)
  mutable phase : int; (* cycles left for the current bit *)
  mutable line : bool;
}

let create ?(divisor = 4) () =
  if divisor <= 0 then invalid_arg "Uart.create: divisor";
  { divisor; queue = Queue.create (); shifting = []; phase = 0; line = true }

let send t byte =
  if byte < 0 || byte > 0xff then invalid_arg "Uart.send: byte";
  Queue.push byte t.queue

let busy t = t.shifting <> [] || not (Queue.is_empty t.queue)

let frame_bits byte =
  (false :: List.init 8 (fun i -> (byte lsr i) land 1 = 1)) @ [ true ]

let clock t =
  if t.phase > 0 then begin
    t.phase <- t.phase - 1;
    t.line
  end
  else begin
    (match t.shifting with
    | b :: rest ->
        t.line <- b;
        t.shifting <- rest;
        t.phase <- t.divisor - 1
    | [] -> (
        match Queue.take_opt t.queue with
        | Some byte ->
            let bits = frame_bits byte in
            t.line <- List.hd bits;
            t.shifting <- List.tl bits;
            t.phase <- t.divisor - 1
        | None -> t.line <- true));
    t.line
  end

let transmit_all ?(divisor = 4) bytes =
  let u = create ~divisor () in
  List.iter (send u) bytes;
  let total = (List.length bytes * 10 * divisor) + divisor in
  Array.init total (fun _ -> clock u)

let decode_line ?(divisor = 4) line =
  let n = Array.length line in
  let bytes = ref [] in
  let i = ref 0 in
  while !i < n do
    if not line.(!i) then begin
      (* start bit found; sample each bit at its centre *)
      let sample k = line.(!i + (k * divisor) + (divisor / 2)) in
      if !i + (9 * divisor) + (divisor / 2) < n then begin
        let byte = ref 0 in
        for bit = 0 to 7 do
          if sample (1 + bit) then byte := !byte lor (1 lsl bit)
        done;
        bytes := !byte :: !bytes;
        i := !i + (10 * divisor)
      end
      else i := n
    end
    else incr i
  done;
  List.rev !bytes

module Codec = struct
  let entry_bytes ~m entry =
    let bits = Timeprint.Log_entry.serialize ~m entry in
    let w = Bitvec.width bits in
    let nbytes = (w + 7) / 8 in
    List.init nbytes (fun byte ->
        let v = ref 0 in
        for bit = 0 to 7 do
          let idx = (byte * 8) + bit in
          if idx < w && Bitvec.get bits idx then v := !v lor (1 lsl bit)
        done;
        !v)

  let entry_of_bytes ~m ~b bytes =
    let cb =
      let rec go c = if 1 lsl c >= m + 1 then c else go (c + 1) in
      go 1
    in
    let w = b + cb in
    let nbytes = (w + 7) / 8 in
    if List.length bytes <> nbytes then Error "wrong byte count"
    else begin
      let arr = Array.of_list bytes in
      let bits = Bitvec.create w in
      for idx = 0 to w - 1 do
        if (arr.(idx / 8) lsr (idx mod 8)) land 1 = 1 then Bitvec.set bits idx true
      done;
      match Timeprint.Log_entry.deserialize ~m ~b bits with
      | entry -> Ok entry
      | exception Invalid_argument e -> Error e
    end
end
