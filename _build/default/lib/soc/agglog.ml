open Tp_bitvec
open Timeprint

type t = {
  enc : Encoding.t;
  fifo_depth : int;
  tp : Bitvec.t; (* XOR accumulator *)
  mutable k : int;
  mutable cycle : int;
  fifo : Log_entry.t Queue.t;
  mutable overflow : bool;
}

let create ?(fifo_depth = 8) enc =
  if fifo_depth <= 0 then invalid_arg "Agglog.create: fifo_depth";
  {
    enc;
    fifo_depth;
    tp = Bitvec.create (Encoding.b enc);
    k = 0;
    cycle = 0;
    fifo = Queue.create ();
    overflow = false;
  }

let clock t ~change =
  if change then begin
    Bitvec.xor_in_place t.tp (Encoding.timestamp t.enc t.cycle);
    t.k <- t.k + 1
  end;
  t.cycle <- t.cycle + 1;
  if t.cycle = Encoding.m t.enc then begin
    let entry = Log_entry.make ~tp:(Bitvec.copy t.tp) ~k:t.k in
    if Queue.length t.fifo < t.fifo_depth then Queue.push entry t.fifo
    else t.overflow <- true;
    (* reset the accumulator and counters for the next trace-cycle *)
    Bitvec.xor_in_place t.tp t.tp;
    t.k <- 0;
    t.cycle <- 0
  end

let fifo_level t = Queue.length t.fifo
let pop t = Queue.take_opt t.fifo
let drain t = List.of_seq (Seq.unfold (fun () -> Option.map (fun e -> (e, ())) (pop t)) ())
let overflowed t = t.overflow

let registers_bits t =
  let m = Encoding.m t.enc in
  let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
  Encoding.b t.enc (* accumulator *) + bits m (* k counter *) + bits m (* cycle counter *)
