(** First-order thermal model of the memory die.

    §5.2.2 observed that the chip "increases [temperature] on its own
    by the execution itself; i.e. it even differs for different
    instruction sequences being run" — so the model couples die
    temperature to bus activity: each active memory cycle adds heat,
    and the die relaxes exponentially toward ambient. *)

type config = {
  ambient : float;  (** °C *)
  heat_per_active_cycle : float;  (** °C added per busy memory cycle *)
  cooling_rate : float;  (** fraction of (T − ambient) shed per cycle *)
}

val default : ambient:float -> config

type t

val create : config -> t
val celsius : t -> float

val step : t -> active:bool -> unit
(** Advance one clock cycle. *)
