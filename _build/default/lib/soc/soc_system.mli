(** The full §5.2.2 system: CPU + AHB + SRAM(+refresh) + thermal model
    + agg-log hardware + UART, clocked cycle by cycle.

    One {!run} plays a program image and returns everything the
    experiment compares: the ground-truth change signal of the address
    bus per trace-cycle, the agg-log hardware's [(TP, k)] entries, and
    the same entries round-tripped through the UART byte stream. A run
    with [refresh = None] and the (possibly wrong) simulator wait
    states is the "Questa simulation"; a run with refresh enabled is
    the "FPGA hardware". *)

type config = {
  encoding : Timeprint.Encoding.t;
  wait_states : int;
  refresh : Sram.refresh_config option;
  thermal : Temperature.config;
  dma : Dma.config option;
      (** optional second bus master; its bursts interleave with the
          CPU's traffic on the traced address bus *)
}

val hardware_config :
  ?ambient:float -> ?wait_states:int -> ?dma:Dma.config ->
  Timeprint.Encoding.t -> config
(** Refresh enabled with {!Sram.default_refresh} (default
    [wait_states = 1], [ambient = 30] °C). *)

val simulation_config :
  ?wait_states:int -> ?dma:Dma.config -> Timeprint.Encoding.t -> config
(** No refresh — the RTL simulation never models it. The Gaisler-bug
    reproduction passes the wrong [wait_states] here (default [1] =
    correct). *)

type run_result = {
  signals : Timeprint.Signal.t list;
      (** ground-truth change signal of each complete trace-cycle *)
  entries : Timeprint.Log_entry.t list;
      (** as latched by the agg-log hardware model *)
  uart_entries : Timeprint.Log_entry.t list;
      (** decoded from the UART line — what the host actually stores *)
  delayed_changes : (int * int) list;
      (** refresh collisions: (trace_cycle_index, cycle_within) of each
          address change that slipped one cycle *)
  final_celsius : float;
  refresh_count : int;
  cycles : int;  (** total simulated cycles (complete trace-cycles) *)
}

val run : ?max_cycles:int -> config -> Isa.program -> run_result

val first_mismatch :
  run_result -> run_result -> [ `K of int | `Tp of int | `None ]
(** Compare two runs entry-by-entry: [`K i] — change counts diverge
    first at trace-cycle [i] (the wait-state configuration bug
    signature); [`Tp i] — counts agree but timeprints diverge at [i]
    (the sporadic-delay signature); [`None] — identical prefixes. *)
