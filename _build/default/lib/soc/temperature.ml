type config = {
  ambient : float;
  heat_per_active_cycle : float;
  cooling_rate : float;
}

let default ~ambient =
  { ambient; heat_per_active_cycle = 0.002; cooling_rate = 0.00004 }

type t = { config : config; mutable celsius : float }

let create config = { config; celsius = config.ambient }
let celsius t = t.celsius

let step t ~active =
  let c = t.config in
  let heat = if active then c.heat_per_active_cycle else 0. in
  t.celsius <-
    t.celsius +. heat -. (c.cooling_rate *. (t.celsius -. c.ambient))
