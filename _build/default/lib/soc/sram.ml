type refresh_config = {
  base_interval : int;
  reference_celsius : float;
  cycles_per_degree : float;
  min_interval : int;
  duration : int;
}

let default_refresh =
  {
    base_interval = 2_000;
    reference_celsius = 25.0;
    cycles_per_degree = 20.0;
    min_interval = 200;
    duration = 1;
  }

type t = {
  ws : int;
  refresh : refresh_config option;
  mutable elapsed : int; (* cycles since the last refresh request *)
  mutable pending : bool; (* a refresh waits to steal an array cycle *)
  mutable count : int;
}

let interval_at rc celsius =
  let shrink = rc.cycles_per_degree *. (celsius -. rc.reference_celsius) in
  max rc.min_interval (rc.base_interval - int_of_float shrink)

let create ?refresh ~wait_states () =
  if wait_states < 0 then invalid_arg "Sram.create: wait_states";
  (match refresh with
  | Some rc ->
      if rc.base_interval <= 0 || rc.min_interval <= 0 || rc.duration <= 0 then
        invalid_arg "Sram.create: refresh config"
  | None -> ());
  { ws = wait_states; refresh; elapsed = 0; pending = false; count = 0 }

let wait_states t = t.ws
let access_latency t = 1 + t.ws

let step t ~celsius =
  match t.refresh with
  | None -> ()
  | Some rc ->
      (* the threshold tracks the die temperature continuously, so a
         hotter die reaches its (shorter) interval sooner — including
         the very first refresh of the run *)
      t.elapsed <- t.elapsed + 1;
      if t.elapsed >= interval_at rc celsius then begin
        t.pending <- true;
        t.count <- t.count + 1;
        t.elapsed <- 0
      end

let refreshing t = t.pending

let consume_refresh t =
  if t.pending then begin
    t.pending <- false;
    true
  end
  else false

let refresh_count t = t.count

let delay_cycles t =
  match t.refresh with Some rc -> rc.duration | None -> 0
