lib/soc/cpu.mli: Hashtbl Isa
