lib/soc/ahb.ml: Array Cpu
