lib/soc/dma.mli: Cpu
