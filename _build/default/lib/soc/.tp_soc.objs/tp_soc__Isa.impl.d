lib/soc/isa.ml: Array Format List Printf
