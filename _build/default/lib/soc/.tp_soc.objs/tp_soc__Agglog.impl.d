lib/soc/agglog.ml: Bitvec Encoding List Log_entry Option Queue Seq Timeprint Tp_bitvec
