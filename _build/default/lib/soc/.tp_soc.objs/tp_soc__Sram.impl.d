lib/soc/sram.ml:
