lib/soc/soc_system.ml: Agglog Ahb Array Cpu Design Dma Encoding Fun List Log_entry Signal Sram Temperature Timeprint Tp_bitvec Uart
