lib/soc/ahb.mli: Cpu
