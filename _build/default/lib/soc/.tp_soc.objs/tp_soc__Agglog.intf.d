lib/soc/agglog.mli: Timeprint
