lib/soc/temperature.mli:
