lib/soc/cpu.ml: Array Hashtbl Isa List
