lib/soc/temperature.ml:
