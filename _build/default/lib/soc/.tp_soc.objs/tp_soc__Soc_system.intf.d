lib/soc/soc_system.mli: Dma Isa Sram Temperature Timeprint
