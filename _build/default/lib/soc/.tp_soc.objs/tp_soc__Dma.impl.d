lib/soc/dma.ml: Cpu Hashtbl Int List
