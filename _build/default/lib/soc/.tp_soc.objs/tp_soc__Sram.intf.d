lib/soc/sram.mli:
