lib/soc/uart.mli: Timeprint
