lib/soc/uart.ml: Array Bitvec List Queue Timeprint Tp_bitvec
