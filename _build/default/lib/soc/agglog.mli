(** Behavioural RTL model of the timeprints agg-log hardware (§5.2.2).

    Registers: a [b]-bit XOR-accumulator, a change counter and a cycle
    counter; combinational: the ROM (or LFSR) holding the per-cycle
    timestamp and the XOR tree folding it into the accumulator on a
    change. At the trace-cycle boundary the [(TP, k)] pair is latched
    into a FIFO drained by the UART. Functionally equivalent to the
    reference {!Timeprint.Logger} — an equivalence the test suite
    checks cycle by cycle. *)

type t

val create : ?fifo_depth:int -> Timeprint.Encoding.t -> t

val clock : t -> change:bool -> unit
(** One clock edge with the change trigger sampled high or low. *)

val fifo_level : t -> int

val pop : t -> Timeprint.Log_entry.t option
(** Drain one latched entry (oldest first). *)

val drain : t -> Timeprint.Log_entry.t list

val overflowed : t -> bool
(** A boundary arrived with the FIFO full; the entry was dropped (and
    the condition latched) — the failure mode trace buffers hit that
    timeprints are designed to avoid. *)

val registers_bits : t -> int
(** Width of all state registers: the hardware cost of the unit. *)
