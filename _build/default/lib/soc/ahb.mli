(** AHB-lite address-bus model: the traced signals of §5.2.2.

    The experiment connects the agg-log hardware to the address lines
    of the AMBA bus. Between transfers the bus holds its last address
    (as real AHB masters do), so the traced change event is "the
    address bus took a new value this cycle". This module replays a
    scheduled access trace into a per-cycle address waveform and the
    resulting change signal. *)

type t

val create : unit -> t

val drive : t -> addr:int -> unit
(** Present a new address in the current cycle. *)

val clock : t -> bool
(** Close the cycle; returns [true] when the address value changed
    during this cycle (the agg-log trigger). *)

val address : t -> int
(** Currently held address. *)

val waveform : Cpu.access list -> cycles:int -> int array
(** Per-cycle address values for a scheduled trace: the bus takes each
    access's address at its [cycle] and holds it until the next one. *)

val change_bits : Cpu.access list -> cycles:int -> bool array
(** Per-cycle change indicator of the waveform (cycle 0 changes iff the
    first access is driven at cycle 0 with a non-initial address). *)
