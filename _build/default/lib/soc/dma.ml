type config = {
  base : int;
  burst : int;
  interval : int;
  start : int;
  stride : int;
}

let default = { base = 0xA000; burst = 4; interval = 97; start = 13; stride = 1 }

let schedule cfg ~until =
  if cfg.burst <= 0 || cfg.interval <= 0 then invalid_arg "Dma.schedule";
  let out = ref [] in
  let rec bursts n =
    let t0 = cfg.start + (n * cfg.interval) in
    if t0 < until then begin
      for i = 0 to cfg.burst - 1 do
        if t0 + i < until then
          out :=
            { Cpu.cycle = t0 + i; addr = cfg.base + ((n * cfg.burst + i) * cfg.stride) }
            :: !out
      done;
      bursts (n + 1)
    end
  in
  bursts 0;
  List.rev !out

let merge ~dma ~cpu =
  (* occupied cycles are claimed by DMA outright; CPU accesses fill the
     next free cycle at or after their scheduled time *)
  let taken = Hashtbl.create 256 in
  List.iter (fun { Cpu.cycle; _ } -> Hashtbl.replace taken cycle ()) dma;
  let shifted_cpu =
    List.map
      (fun { Cpu.cycle; addr } ->
        let rec free c = if Hashtbl.mem taken c then free (c + 1) else c in
        let c = free cycle in
        Hashtbl.replace taken c ();
        { Cpu.cycle = c; addr })
      cpu
  in
  List.sort
    (fun (a : Cpu.access) (b : Cpu.access) -> Int.compare a.cycle b.cycle)
    (dma @ shifted_cpu)
