(** Cycle-accurate interpreter for the {!Isa} core.

    Timing model (a simplified in-order pipeline):
    - instruction fetch: one bus access of [1 + wait_states] cycles at
      [code_base + pc];
    - execute: 1 cycle;
    - memory instructions add a data access of [1 + wait_states] cycles.

    The product is the {e scheduled bus-access trace} — the ground
    truth the AHB address bus replays. Wait-state configuration changes
    this schedule wholesale, which is exactly why the mis-configured
    Questa/Gaisler SRAM model of §5.2.2 showed up as a per-trace-cycle
    [k] mismatch. *)

type access = { cycle : int; addr : int }
(** [cycle] is the bus cycle in which the address is driven (the
    address-phase start). *)

type result = {
  accesses : access list;  (** chronological *)
  halted_at : int option;  (** cycle of [Halt] retirement, if reached *)
  memory : (int, int) Hashtbl.t;  (** final data memory *)
}

val code_base : int
(** Base address of instruction storage (distinct from data). *)

val run :
  ?wait_states:int -> ?max_cycles:int -> Isa.program -> result
(** Execute from instruction 0. Stops at [Halt] or [max_cycles]
    (default 100_000). Raises [Invalid_argument] on an invalid
    program. *)
