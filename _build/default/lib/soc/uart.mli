(** Simplified USB-UART transmitter (8N1) used to stream timeprints off
    chip in §5.2.2.

    Frame: one start bit (low), eight data bits LSB-first, one stop bit
    (high); the line idles high. [divisor] clock cycles per bit. The
    receiver side ({!decode_line}) recovers the byte stream from a
    sampled line trace, and {!Codec} packs log entries into bytes. *)

type t

val create : ?divisor:int -> unit -> t

val send : t -> int -> unit
(** Enqueue one byte ([0 .. 255]). *)

val busy : t -> bool

val clock : t -> bool
(** Advance one clock cycle; returns the TX line level. *)

val transmit_all : ?divisor:int -> int list -> bool array
(** Line trace of sending all bytes back-to-back (plus trailing idle). *)

val decode_line : ?divisor:int -> bool array -> int list
(** Recover bytes from a line trace (ideal sampling). *)

module Codec : sig
  val entry_bytes : m:int -> Timeprint.Log_entry.t -> int list
  (** Wire format: the [b + ⌈log₂(m+1)⌉] serialized bits, padded to
      whole bytes, LSB-first within each byte. *)

  val entry_of_bytes :
    m:int -> b:int -> int list -> (Timeprint.Log_entry.t, string) result
end
