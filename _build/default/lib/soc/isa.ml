type reg = int

type instr =
  | Li of { rd : reg; imm : int }
  | Ld of { rd : reg; addr : int }
  | St of { rs : reg; addr : int }
  | Ldr of { rd : reg; ra : reg }
  | Str of { rs : reg; ra : reg }
  | Add of { rd : reg; ra : reg; rb : reg }
  | Addi of { rd : reg; ra : reg; imm : int }
  | Sub of { rd : reg; ra : reg; rb : reg }
  | Jnz of { r : reg; target : int }
  | Jmp of int
  | Nop
  | Halt

type program = instr array

let reg_ok r = r >= 0 && r < 8

let validate prog =
  let n = Array.length prog in
  let check i instr =
    let bad msg = Error (Printf.sprintf "instr %d: %s" i msg) in
    let regs =
      match instr with
      | Li { rd; _ } -> [ rd ]
      | Ld { rd; _ } -> [ rd ]
      | St { rs; _ } -> [ rs ]
      | Ldr { rd; ra } -> [ rd; ra ]
      | Str { rs; ra } -> [ rs; ra ]
      | Add { rd; ra; rb } | Sub { rd; ra; rb } -> [ rd; ra; rb ]
      | Addi { rd; ra; _ } -> [ rd; ra ]
      | Jnz { r; _ } -> [ r ]
      | Jmp _ | Nop | Halt -> []
    in
    if not (List.for_all reg_ok regs) then bad "register out of range"
    else
      match instr with
      | Jnz { target; _ } | Jmp target ->
          if target < 0 || target >= n then bad "branch target out of range"
          else Ok ()
      | _ -> Ok ()
  in
  let rec go i =
    if i >= n then Ok ()
    else match check i prog.(i) with Ok () -> go (i + 1) | e -> e
  in
  go 0

let pp_instr ppf = function
  | Li { rd; imm } -> Format.fprintf ppf "li r%d, %d" rd imm
  | Ld { rd; addr } -> Format.fprintf ppf "ld r%d, [0x%x]" rd addr
  | St { rs; addr } -> Format.fprintf ppf "st r%d, [0x%x]" rs addr
  | Ldr { rd; ra } -> Format.fprintf ppf "ldr r%d, [r%d]" rd ra
  | Str { rs; ra } -> Format.fprintf ppf "str r%d, [r%d]" rs ra
  | Add { rd; ra; rb } -> Format.fprintf ppf "add r%d, r%d, r%d" rd ra rb
  | Addi { rd; ra; imm } -> Format.fprintf ppf "addi r%d, r%d, %d" rd ra imm
  | Sub { rd; ra; rb } -> Format.fprintf ppf "sub r%d, r%d, r%d" rd ra rb
  | Jnz { r; target } -> Format.fprintf ppf "jnz r%d, %d" r target
  | Jmp t -> Format.fprintf ppf "jmp %d" t
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf prog =
  Array.iteri (fun i instr -> Format.fprintf ppf "%3d: %a@." i pp_instr instr) prog

(* r0 = src pointer, r1 = dst pointer, r2 = counter, r3 = scratch *)
let memcpy ~words ~src ~dst =
  [|
    Li { rd = 0; imm = src };
    Li { rd = 1; imm = dst };
    Li { rd = 2; imm = words };
    Li { rd = 4; imm = 1 };
    (* loop: *)
    Ldr { rd = 3; ra = 0 };
    Str { rs = 3; ra = 1 };
    Addi { rd = 0; ra = 0; imm = 1 };
    Addi { rd = 1; ra = 1; imm = 1 };
    Sub { rd = 2; ra = 2; rb = 4 };
    Jnz { r = 2; target = 4 };
    Halt;
  |]

(* r0 = pointer, r1 = accumulator, r2 = counter *)
let checksum ~words ~src =
  [|
    Li { rd = 0; imm = src };
    Li { rd = 1; imm = 0 };
    Li { rd = 2; imm = words };
    Li { rd = 4; imm = 1 };
    (* loop: *)
    Ldr { rd = 3; ra = 0 };
    Add { rd = 1; ra = 1; rb = 3 };
    Addi { rd = 0; ra = 0; imm = 1 };
    Sub { rd = 2; ra = 2; rb = 4 };
    Jnz { r = 2; target = 4 };
    Halt;
  |]

(* r0 = pointer, r2 = counter: load then bump by stride *)
let stride_walker ~steps ~base ~stride =
  [|
    Li { rd = 0; imm = base };
    Li { rd = 2; imm = steps };
    Li { rd = 4; imm = 1 };
    (* loop: *)
    Ldr { rd = 3; ra = 0 };
    Addi { rd = 0; ra = 0; imm = stride };
    Nop;
    Sub { rd = 2; ra = 2; rb = 4 };
    Jnz { r = 2; target = 3 };
    Halt;
  |]
