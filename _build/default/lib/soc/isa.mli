(** A small load/store ISA standing in for the LEON3's integer unit.

    Only the shape of the memory traffic matters for the experiment —
    which addresses appear on the AHB bus, and when — so the ISA is a
    minimal RISC: 8 registers, direct and register-indirect loads and
    stores, ALU ops, branches. Instruction fetches are bus accesses
    too (code lives in the same SRAM), as on the real system. *)

type reg = int
(** Register index [0 .. 7]; register 0 is writable (no hardwired zero). *)

type instr =
  | Li of { rd : reg; imm : int }  (** rd := imm *)
  | Ld of { rd : reg; addr : int }  (** rd := mem[addr] *)
  | St of { rs : reg; addr : int }  (** mem[addr] := rs *)
  | Ldr of { rd : reg; ra : reg }  (** rd := mem[ra] *)
  | Str of { rs : reg; ra : reg }  (** mem[ra] := rs *)
  | Add of { rd : reg; ra : reg; rb : reg }
  | Addi of { rd : reg; ra : reg; imm : int }
  | Sub of { rd : reg; ra : reg; rb : reg }
  | Jnz of { r : reg; target : int }  (** branch to instruction index *)
  | Jmp of int
  | Nop
  | Halt

type program = instr array

val validate : program -> (unit, string) result
(** Check register indices and branch targets. *)

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> program -> unit

(** Sample images exercising distinct memory-access shapes. *)

val memcpy : words:int -> src:int -> dst:int -> program
(** Word-by-word copy loop: two data accesses per iteration. *)

val checksum : words:int -> src:int -> program
(** Read-accumulate loop: one load per iteration. *)

val stride_walker : steps:int -> base:int -> stride:int -> program
(** Pointer chase with a fixed stride: the pattern used for the
    §5.2.2 temperature runs (long, regular, refresh-sensitive). *)
