(** Burst DMA master contending for the AHB.

    The traced address bus of §5.2.2 belongs to whichever master owns
    the bus, not to the CPU alone. This module models a simple
    descriptor-driven DMA engine: every [interval] cycles it claims the
    bus for a burst of [burst] back-to-back word transfers from a
    rising source address. {!merge} arbitrates its schedule against the
    CPU's access stream (DMA has priority; a colliding CPU access slips
    one cycle, cascading as needed) — producing the combined stream the
    agg-log hardware actually observes. *)

type config = {
  base : int;  (** first source address *)
  burst : int;  (** transfers per burst *)
  interval : int;  (** cycles between burst starts *)
  start : int;  (** cycle of the first burst *)
  stride : int;  (** address step between consecutive transfers *)
}

val default : config
(** 4-beat bursts from 0xA000 every 97 cycles, starting at cycle 13. *)

val schedule : config -> until:int -> Cpu.access list
(** The DMA engine's own access stream up to cycle [until] (exclusive).
    Within a burst, transfers land on consecutive cycles. *)

val merge : dma:Cpu.access list -> cpu:Cpu.access list -> Cpu.access list
(** Arbitrated union, chronological. Both inputs must be sorted by
    cycle. DMA accesses keep their slots; a CPU access whose cycle is
    taken moves to the next free cycle (preserving CPU order). *)
