(** SRAM timing model: wait states plus temperature-compensated refresh.

    Two knobs reproduce the two §5.2.2 findings:

    - [wait_states] stretches every access; the Gaisler library bug was
      a wrong value here, visible as a changed access {e schedule}
      (k mismatch between "hardware" and "simulation");
    - the refresh controller periodically steals the array for
      [duration] cycles. Its interval {e shrinks as the die heats up}
      (temperature-compensated refresh, per the memory datasheet), so
      an access colliding with a refresh is delayed — the sporadic
      one-cycle delays whose onset moves earlier at higher temperature. *)

type refresh_config = {
  base_interval : int;  (** cycles between refreshes at the reference temperature *)
  reference_celsius : float;
  cycles_per_degree : float;  (** interval shrink per °C above reference *)
  min_interval : int;
  duration : int;  (** cycles the colliding access is pushed; 1 reproduces the paper *)
}

val default_refresh : refresh_config

type t

val create : ?refresh:refresh_config -> wait_states:int -> unit -> t

val wait_states : t -> int

val access_latency : t -> int
(** [1 + wait_states]. *)

val step : t -> celsius:float -> unit
(** Advance the refresh controller one cycle: the countdown runs at the
    temperature-dependent interval and raises a pending refresh request
    on expiry. *)

val refreshing : t -> bool
(** A refresh request is pending (the array will steal a cycle from the
    next access). *)

val consume_refresh : t -> bool
(** Called by the memory controller when an access is about to issue:
    returns [true] (and clears the request) when a pending refresh
    steals the array, delaying that access by {!delay_cycles}. *)

val delay_cycles : t -> int

val refresh_count : t -> int
(** Refresh requests raised so far. *)
