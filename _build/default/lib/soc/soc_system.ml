open Timeprint

type config = {
  encoding : Encoding.t;
  wait_states : int;
  refresh : Sram.refresh_config option;
  thermal : Temperature.config;
  dma : Dma.config option;
}

let hardware_config ?(ambient = 30.0) ?(wait_states = 1) ?dma encoding =
  {
    encoding;
    wait_states;
    refresh = Some Sram.default_refresh;
    thermal = Temperature.default ~ambient;
    dma;
  }

let simulation_config ?(wait_states = 1) ?dma encoding =
  {
    encoding;
    wait_states;
    refresh = None;
    thermal = Temperature.default ~ambient:25.0;
    dma;
  }

type run_result = {
  signals : Signal.t list;
  entries : Log_entry.t list;
  uart_entries : Log_entry.t list;
  delayed_changes : (int * int) list;
  final_celsius : float;
  refresh_count : int;
  cycles : int;
}

let run ?(max_cycles = 200_000) config prog =
  let m = Encoding.m config.encoding in
  let cpu = Cpu.run ~wait_states:config.wait_states ~max_cycles prog in
  let accesses =
    match config.dma with
    | None -> cpu.Cpu.accesses
    | Some dcfg ->
        let horizon =
          List.fold_left (fun acc { Cpu.cycle; _ } -> max acc cycle) 0
            cpu.Cpu.accesses
          + 1
        in
        Dma.merge ~dma:(Dma.schedule dcfg ~until:horizon) ~cpu:cpu.Cpu.accesses
  in
  let sram = Sram.create ?refresh:config.refresh ~wait_states:config.wait_states () in
  let temp = Temperature.create config.thermal in
  let agg = Agglog.create ~fifo_depth:1024 config.encoding in
  let bus = Ahb.create () in
  let latency = Sram.access_latency sram in
  (* simulate whole trace-cycles covering the program execution *)
  let last_cycle =
    List.fold_left (fun acc { Cpu.cycle; _ } -> max acc cycle) 0 accesses
  in
  let total = min max_cycles ((last_cycle + latency + m) / m * m) in
  let change_bits = Array.make total false in
  let delayed = ref [] in
  let pending = ref accesses in
  let busy_until = ref 0 in
  for c = 0 to total - 1 do
    Sram.step sram ~celsius:(Temperature.celsius temp);
    (* issue the scheduled access, delayed on a refresh collision;
       cascaded delays keep the stream ordered *)
    (match !pending with
    | { Cpu.cycle; addr } :: rest when cycle <= c ->
        if Sram.consume_refresh sram then begin
          delayed := (c / m, c mod m) :: !delayed;
          (* push this and any access colliding with the slip one cycle *)
          let rec shift shift_from = function
            | { Cpu.cycle; addr } :: tl when cycle <= shift_from ->
                { Cpu.cycle = shift_from + 1; addr } :: shift (shift_from + 1) tl
            | tl -> tl
          in
          pending := shift c ({ Cpu.cycle; addr } :: rest)
        end
        else begin
          Ahb.drive bus ~addr;
          busy_until := c + latency;
          pending := rest
        end
    | _ -> ());
    change_bits.(c) <- Ahb.clock bus;
    Temperature.step temp ~active:(c < !busy_until);
    Agglog.clock agg ~change:change_bits.(c)
  done;
  let n_cycles = total / m in
  let signals =
    List.init n_cycles (fun j ->
        Signal.of_bitvec
          (Tp_bitvec.Bitvec.of_indices ~width:m
             (List.filter
                (fun i -> change_bits.((j * m) + i))
                (List.init m Fun.id))))
  in
  let entries = Agglog.drain agg in
  (* stream every entry through the UART and decode on the host side *)
  let bytes = List.concat_map (Uart.Codec.entry_bytes ~m) entries in
  let line = Uart.transmit_all ~divisor:4 bytes in
  let received = Uart.decode_line ~divisor:4 line in
  let per_entry = (Encoding.b config.encoding + Design.counter_bits ~m + 7) / 8 in
  let rec chunk = function
    | [] -> []
    | bs ->
        let rec split i = function
          | rest when i = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: tl ->
              let a, b = split (i - 1) tl in
              (x :: a, b)
        in
        let now, rest = split per_entry bs in
        if List.length now < per_entry then []
        else now :: chunk rest
  in
  let uart_entries =
    List.filter_map
      (fun bs ->
        match Uart.Codec.entry_of_bytes ~m ~b:(Encoding.b config.encoding) bs with
        | Ok e -> Some e
        | Error _ -> None)
      (chunk received)
  in
  {
    signals;
    entries;
    uart_entries;
    delayed_changes = List.rev !delayed;
    final_celsius = Temperature.celsius temp;
    refresh_count = Sram.refresh_count sram;
    cycles = total;
  }

let first_mismatch a b =
  let rec go i ea eb =
    match (ea, eb) with
    | [], _ | _, [] -> `None
    | x :: xs, y :: ys ->
        if Log_entry.k x <> Log_entry.k y then `K i
        else if not (Log_entry.equal x y) then `Tp i
        else go (i + 1) xs ys
  in
  go 0 a.entries b.entries
