type t = { mutable held : int; mutable pending : int option }

let create () = { held = 0; pending = None }
let drive t ~addr = t.pending <- Some addr

let clock t =
  match t.pending with
  | None -> false
  | Some a ->
      t.pending <- None;
      let changed = a <> t.held in
      t.held <- a;
      changed

let address t = t.held

let waveform accesses ~cycles =
  if cycles <= 0 then invalid_arg "Ahb.waveform: cycles";
  let wave = Array.make cycles 0 in
  let bus = create () in
  let remaining = ref accesses in
  for c = 0 to cycles - 1 do
    (match !remaining with
    | { Cpu.cycle; addr } :: rest when cycle = c ->
        drive bus ~addr;
        remaining := rest
    | _ -> ());
    ignore (clock bus);
    wave.(c) <- address bus
  done;
  wave

let change_bits accesses ~cycles =
  let wave = waveform accesses ~cycles in
  let bits = Array.make cycles false in
  let prev = ref 0 in
  Array.iteri
    (fun c a ->
      bits.(c) <- a <> !prev;
      prev := a)
    wave;
  bits
