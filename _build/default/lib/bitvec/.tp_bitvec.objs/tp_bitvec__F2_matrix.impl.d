lib/bitvec/f2_matrix.ml: Array Bitvec Format Fun List
