lib/bitvec/bitvec.mli: Format Random
