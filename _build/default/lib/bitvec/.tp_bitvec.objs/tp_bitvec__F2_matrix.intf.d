lib/bitvec/f2_matrix.mli: Bitvec Format
