lib/bitvec/bitvec.ml: Array Format List Random Stdlib String
