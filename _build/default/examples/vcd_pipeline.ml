(* From a simulator waveform dump to a reconstructed trace.

   A user with an RTL simulator does not write change vectors by hand —
   they have a VCD dump. This example plays both sides: it fabricates a
   dump the way Questa/Verilator would (here: an interrupt-request line
   pulsing twice per trace-cycle), then runs the analyst's pipeline:
   parse the VCD, sample the signal at its clock, log timeprints per
   trace-cycle, and reconstruct — dumping the reconstruction back to
   VCD for side-by-side viewing in GTKWave.

   Run with: dune exec examples/vcd_pipeline.exe *)

open Timeprint

let m = 32
let clock_period = 10 (* ns *)

let () =
  (* --- the design under test side: produce a VCD dump --------------- *)
  let irq = Signal.of_changes ~m [ 4; 5; 20; 21 ] in
  let dump = Tp_vcd.Vcd.of_signal ~name:"irq" ~clock_period ~initial:false irq in
  Format.printf "Simulator dump (%d bytes of VCD):@.%s@." (String.length dump)
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 12) (String.split_on_char '\n' dump))
    ^ "\n...");

  (* --- the analyst side --------------------------------------------- *)
  let w =
    match Tp_vcd.Vcd.parse dump with
    | Ok w -> w
    | Error e -> failwith e
  in
  Format.printf "@.Variables in the dump:@.";
  List.iter
    (fun v -> Format.printf "  %s (width %d)@." v.Tp_vcd.Vcd.name v.Tp_vcd.Vcd.width)
    (Tp_vcd.Vcd.vars w);

  let signals =
    match Tp_vcd.Vcd.to_signal w ~name:"irq" ~clock_period ~m () with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf "@.%d trace-cycle(s) sampled at %d ns clock@." (List.length signals)
    clock_period;

  let enc = Encoding.random_constrained_auto ~m () in
  List.iteri
    (fun i s ->
      let entry = Logger.abstract enc s in
      Format.printf "@.trace-cycle %d: logged %a@." i Log_entry.pp entry;
      let pb = Reconstruct.problem ~assume:[ Property.pulse_pairs ] enc entry in
      match Reconstruct.enumerate pb with
      | { Reconstruct.signals = [ unique ]; _ } ->
          Format.printf "  unique reconstruction: %a@." Signal.pp unique;
          let back =
            Tp_vcd.Vcd.of_signal ~name:"irq_reconstructed" ~clock_period
              ~initial:false unique
          in
          Format.printf "  re-dumped as VCD (%d bytes) for GTKWave@."
            (String.length back)
      | { Reconstruct.signals; _ } ->
          Format.printf "  %d candidate reconstructions@." (List.length signals))
    signals
