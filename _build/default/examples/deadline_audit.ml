(* RV monitors + timeprints working together (Figures 1-3).

   During deployment an on-chip monitor checks a coarse deadline
   property every trace-cycle. Its PASS verdicts cost nothing to store
   — but after an incident they become reconstruction constraints that
   shrink the SAT search, letting the postmortem answer a question the
   monitor itself never checked: was there a suspiciously EARLY firing
   (a security-relevant behaviour the paper attributes to [14])?

   Run with: dune exec examples/deadline_audit.exe *)

open Tp_rv
open Timeprint

let m = 64
let enc = Encoding.random_constrained_auto ~m ~seed:7 ()

(* The deployed monitor: "at least 2 changes before cycle 48". *)
let monitor_spec = Monitor.Deadline { count = 2; before = 48 }

let () =
  Format.printf "Deployment: %a with monitor %a@.@." Encoding.pp enc
    Monitor.pp_spec monitor_spec;

  (* In-field execution: a handful of trace-cycles; cycle 2 contains an
     anomalously early firing at cycle 1. *)
  let traces =
    [
      Signal.of_changes ~m [ 10; 11; 30; 31 ];
      Signal.of_changes ~m [ 12; 13; 33; 34 ];
      Signal.of_changes ~m [ 1; 2; 30; 31 ];
      (* the anomaly *)
      Signal.of_changes ~m [ 11; 12; 31; 32 ];
    ]
  in
  let monitor = Monitor.create ~m monitor_spec in
  let logger = Logger.create enc in
  List.iter
    (fun s ->
      for i = 0 to m - 1 do
        let change = Signal.change_at s i in
        ignore (Monitor.step monitor ~change);
        ignore (Logger.step logger ~change)
      done)
    traces;

  Format.printf "Monitor verdicts per trace-cycle: ";
  List.iter (fun v -> Format.printf "%a " Monitor.pp_verdict v) (Monitor.verdicts monitor);
  Format.printf "@.(the monitor saw nothing: every deadline was met)@.@.";

  (* Postmortem: audit each trace-cycle for firings before cycle 8 —
     a property never monitored on chip. The monitor's PASS verdict is
     sound pruning knowledge for the reconstruction. *)
  let early = Property.deadline ~count:1 ~before:8 in
  List.iteri
    (fun i entry ->
      let assume =
        match List.nth (Monitor.verdicts monitor) i with
        | Monitor.Pass -> [ Monitor.to_property monitor_spec; Property.pulse_pairs ]
        | Monitor.Fail -> [ Property.pulse_pairs ]
      in
      let pb = Reconstruct.problem ~assume enc entry in
      Format.printf "trace-cycle %d %a: early firing? %a@." i Log_entry.pp entry
        Reconstruct.pp_check_result
        (Reconstruct.check pb early))
    (Logger.completed logger);

  Format.printf
    "@.Trace-cycle 2 is exposed: every reconstruction consistent with its@.";
  Format.printf
    "timeprint fires before cycle 8 - evidence of the early (suspicious) event.@."
