examples/didactic.mli:
