examples/temperature_refresh.ml: Encoding Format Isa List Property Reconstruct Signal Soc_system Timeprint Tp_soc
