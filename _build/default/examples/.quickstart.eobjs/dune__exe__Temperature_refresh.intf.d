examples/temperature_refresh.mli:
