examples/quickstart.mli:
