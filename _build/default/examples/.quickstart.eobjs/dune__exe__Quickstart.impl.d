examples/quickstart.ml: Design Encoding Format List Log_entry Logger Property Reconstruct Signal Timeprint
