examples/didactic.ml: Array Bitvec Encoding Format Linear_reconstruct List Log_entry Logger Property Reconstruct Signal Timeprint Tp_bitvec
