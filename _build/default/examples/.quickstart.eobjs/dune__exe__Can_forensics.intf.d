examples/can_forensics.mli:
