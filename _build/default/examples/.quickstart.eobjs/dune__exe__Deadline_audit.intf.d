examples/deadline_audit.mli:
