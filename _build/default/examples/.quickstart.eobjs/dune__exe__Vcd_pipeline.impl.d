examples/vcd_pipeline.ml: Encoding Format List Log_entry Logger Property Reconstruct Signal String Timeprint Tp_vcd
