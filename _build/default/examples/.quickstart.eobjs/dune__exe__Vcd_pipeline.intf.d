examples/vcd_pipeline.mli:
