examples/deadline_audit.ml: Encoding Format List Log_entry Logger Monitor Property Reconstruct Signal Timeprint Tp_rv
