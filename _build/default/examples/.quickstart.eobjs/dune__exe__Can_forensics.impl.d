examples/can_forensics.ml: Bus Design Encoding Forensics Format List Log_entry Message Msglog Reconstruct Scheduler Signal String Timeprint Tp_canbus
