(* The temperature-compensated-refresh experiment of §5.2.2.

   A CPU image runs twice: once on the "FPGA hardware" (SRAM refresh
   enabled, its rate compensated by die temperature) and once in the
   "RTL simulation" (no refresh — and initially with the Gaisler
   library's wrong wait-state configuration). Comparing the timeprints
   logged by both runs surfaces, in order:

     1. a k mismatch  -> the simulation's SRAM wait states are wrong;
     2. after the fix, a TP mismatch with equal k -> a sporadic
        one-cycle delay happened on chip but not in simulation;
     3. reconstruction under the "one change delayed by one cycle"
        hypothesis pinpoints the exact clock-cycle;
     4. sweeping ambient temperature moves the first mismatch earlier —
        the temperature-compensated refresh signature.

   Run with: dune exec examples/temperature_refresh.exe *)

open Tp_soc
open Timeprint

let enc = Encoding.random_constrained ~m:256 ~b:20 ~seed:5 ()
let image = Isa.stride_walker ~steps:600 ~base:0x8000 ~stride:3

let pp_mismatch ppf = function
  | `K i -> Format.fprintf ppf "k mismatch at trace-cycle %d" i
  | `Tp i -> Format.fprintf ppf "TP mismatch (equal k) at trace-cycle %d" i
  | `None -> Format.pp_print_string ppf "no mismatch"

let () =
  Format.printf "Image: %d-step stride walker; %a@.@." 600 Encoding.pp enc;

  (* The hardware: refresh on, correct wait states, warm car interior. *)
  let hw = Soc_system.run (Soc_system.hardware_config ~ambient:55.0 enc) image in
  Format.printf
    "Hardware run: %d cycles, %d trace-cycles, %d refreshes, %.1f degC final@."
    hw.Soc_system.cycles
    (List.length hw.Soc_system.entries)
    hw.Soc_system.refresh_count hw.Soc_system.final_celsius;

  (* Step 1: simulation with the WRONG wait states (the library bug). *)
  let sim_buggy = Soc_system.run (Soc_system.simulation_config ~wait_states:0 enc) image in
  Format.printf "@.vs simulation with wrong SRAM wait states: %a@." pp_mismatch
    (Soc_system.first_mismatch hw sim_buggy);
  Format.printf "   -> k differs: the simulation model's timing is wrong.@.";

  (* Step 2: fix the wait states; k now agrees everywhere, but the
     timeprints start to differ where refresh delayed a change. *)
  let sim = Soc_system.run (Soc_system.simulation_config ~wait_states:1 enc) image in
  let mismatch = Soc_system.first_mismatch hw sim in
  Format.printf "@.vs corrected simulation: %a@." pp_mismatch mismatch;

  (* Step 3: localize the delay with the delayed-once property. *)
  (match mismatch with
  | `Tp tc ->
      let hw_entry = List.nth hw.Soc_system.entries tc in
      let sim_signal = List.nth sim.Soc_system.signals tc in
      let pb =
        Reconstruct.problem
          ~assume:[ Property.delayed_once sim_signal ]
          enc hw_entry
      in
      (match Reconstruct.enumerate pb with
      | { Reconstruct.signals = [ found ]; _ } ->
          let delayed_at =
            List.find
              (fun i -> not (Signal.change_at found i))
              (Signal.changes sim_signal)
          in
          Format.printf
            "   delayed-once reconstruction: unique solution; the change@.";
          Format.printf
            "   scheduled for cycle %d slipped to cycle %d (refresh collision).@."
            delayed_at (delayed_at + 1)
      | { Reconstruct.signals; _ } ->
          Format.printf "   %d candidate delay positions@." (List.length signals));
      (* cross-check against the simulator's ground truth *)
      let truth =
        List.filter (fun (tc', _) -> tc' = tc) hw.Soc_system.delayed_changes
      in
      List.iter
        (fun (_, c) -> Format.printf "   (ground truth: delay at cycle %d)@." c)
        truth
  | `K _ | `None -> Format.printf "   unexpected mismatch shape@.");

  (* Step 4: temperature sweep — hotter means earlier first mismatch. *)
  Format.printf "@.Ambient sweep (first mismatching trace-cycle):@.";
  List.iter
    (fun ambient ->
      let hw = Soc_system.run (Soc_system.hardware_config ~ambient enc) image in
      Format.printf "  %5.1f degC: %a@." ambient pp_mismatch
        (Soc_system.first_mismatch hw sim))
    [ 25.0; 40.0; 55.0; 70.0; 85.0 ]
